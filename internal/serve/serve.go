package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/features"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/recon"
	"repro/internal/skymap"
)

// Config sizes the service.
type Config struct {
	// Instrument is the detector/pipeline configuration; nil means
	// adapt.DefaultInstrument(). Its Metrics field is overwritten with the
	// server's registry.
	Instrument *adapt.Instrument
	// Bundle is the initial model pair; nil starts the no-ML pipeline
	// (POST /admin/reload can install models later).
	Bundle *models.Bundle
	// ModelPath is the default path for /admin/reload, and provenance for
	// the initial bundle.
	ModelPath string
	// Backend selects the inference backend every generation of models is
	// served with ("" = float32). The server is pinned to it for its
	// lifetime and reports it in /version. New panics when the initial
	// bundle cannot implement it (int8/fpga-sim without a quantized
	// model); callers get friendlier errors by pre-validating with
	// adapt.NewClassifier.
	Backend adapt.Backend
	// MaxConcurrent bounds simultaneously computing requests (0 means the
	// process parallelism default, par.DefaultWorkers).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a compute slot beyond
	// MaxConcurrent; anything past that is rejected with 429 (0 means
	// 4×MaxConcurrent; negative means no waiting room).
	QueueDepth int
	// BatchRows and BatchWindow configure the NN micro-batcher's size and
	// deadline triggers (0 means DefaultBatchRows / DefaultBatchWindow).
	BatchRows   int
	BatchWindow time.Duration
	// MaxBodyBytes caps request bodies (0 means 64 MiB).
	MaxBodyBytes int64
	// DefaultDeadline applies to requests that carry no ?deadline_ms (0
	// means 30s).
	DefaultDeadline time.Duration
	// Metrics receives the server's and the pipeline's metrics; nil
	// creates a fresh registry (exposed at /metrics either way).
	Metrics *obs.Registry
}

// Server is the adaptserve HTTP service: localization and classification
// over the parallel pipeline with micro-batched NN inference, bounded
// admission, hot-reloadable models, and Prometheus metrics.
type Server struct {
	cfg      Config
	inst     adapt.Instrument
	metrics  *obs.Registry
	backend  adapt.Backend
	store    *modelStore
	adm      *admission
	mux      *http.ServeMux
	httpSrv  *http.Server
	draining atomic.Bool
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = par.DefaultWorkers()
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4 * cfg.MaxConcurrent
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 30 * time.Second
	}

	backend, err := adapt.ParseBackend(string(cfg.Backend))
	if err != nil {
		panic("serve: " + err.Error())
	}

	s := &Server{cfg: cfg, metrics: cfg.Metrics, backend: backend}
	if cfg.Instrument != nil {
		s.inst = *cfg.Instrument
	} else {
		s.inst = adapt.DefaultInstrument()
	}
	s.inst.Metrics = s.metrics

	s.store = newModelStore(backend, func(cls adapt.BkgClassifier) *Batcher {
		return NewBatcher(cls, cfg.BatchRows, cfg.BatchWindow, s.metrics)
	}, s.metrics)
	if cfg.Bundle != nil {
		if err := s.store.install(cfg.Bundle, cfg.ModelPath); err != nil {
			panic("serve: " + err.Error())
		}
	}
	s.adm = newAdmission(cfg.MaxConcurrent, cfg.QueueDepth)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/localize", s.handleLocalize)
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/skymap", s.handleSkymap)
	s.mux.HandleFunc("/v1/replay", s.handleReplay)
	s.mux.HandleFunc("/admin/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/version", s.handleVersion)
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler exposes the route table (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Serve accepts connections on l until Shutdown. A closed-by-Shutdown
// listener is a clean exit (nil error).
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server: readiness flips to 503 (load balancers stop
// sending), in-flight requests run to completion (bounded by ctx), and the
// live batcher flushes. It implements the SIGTERM handling contract of
// cmd/adaptserve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.httpSrv.Shutdown(ctx)
	if b := s.store.current().batcher; b != nil {
		b.Close()
	}
	return err
}

// ---- request plumbing ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// requestCtx applies the request deadline (?deadline_ms, else the
// configured default).
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if v := r.URL.Query().Get("deadline_ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// retryAfterSeconds estimates how soon an overloaded client should retry:
// the queue's current depth times the p50 request latency, spread over the
// compute slots — then jittered uniformly over [0.5, 1.5]× before clamping
// to [1, 30] seconds. The jitter matters at fleet scale: when a router
// sheds a burst across many clients, identical Retry-After values would
// resynchronize every rejected request onto the same second and turn one
// overload into a thundering-herd oscillation.
func (s *Server) retryAfterSeconds() int {
	est := 1.0
	if p50 := s.metrics.Stage("serve_localize").Percentile(0.5); p50 > 0 {
		est = p50.Seconds() * float64(s.adm.queued()) / float64(s.cfg.MaxConcurrent)
	}
	est *= 0.5 + rand.Float64()
	sec := int(math.Ceil(est))
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}

// admit runs the admission protocol and maps failures onto HTTP. The
// returned release is nil when the request was refused (and the response
// already written).
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, endpoint string) (release func(), queueWait time.Duration) {
	t0 := time.Now()
	err := s.adm.acquire(ctx)
	queueWait = time.Since(t0)
	s.metrics.ObserveStage("serve_queue_wait", queueWait)
	switch {
	case err == nil:
		// Admitted, but the deadline may have expired while last in line.
		if ctx.Err() != nil {
			s.adm.release()
			s.metrics.Counter("serve_" + endpoint + "_deadline").Inc()
			writeError(w, http.StatusServiceUnavailable, "deadline expired while queued")
			return nil, queueWait
		}
		return s.adm.release, queueWait
	case errors.Is(err, errOverload):
		s.metrics.Counter("serve_" + endpoint + "_rejected").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "admission queue full")
		return nil, queueWait
	default: // context expired or client went away while queued
		s.metrics.Counter("serve_" + endpoint + "_deadline").Inc()
		writeError(w, http.StatusServiceUnavailable, "deadline expired while queued: %v", err)
		return nil, queueWait
	}
}

// setModelHeaders stamps which model generation and inference backend
// produced a response. A fleet front door keys its exact result cache on
// exactly this pair: the body of a deterministic endpoint is a pure
// function of (request bytes, generation, backend).
func (s *Server) setModelHeaders(w http.ResponseWriter, set *modelSet) {
	w.Header().Set(HeaderModelGeneration, strconv.FormatUint(set.gen, 10))
	w.Header().Set(HeaderBackend, string(s.backend))
}

// canonicalRequested reports whether ?canonical=1 asked for a canonical
// response: per-run timing fields (timing_ms, queue_ms) zeroed so the body
// is a pure function of the request and the models. Everything scientific
// is deterministic already; the timing fields are the only noise, and
// zeroing them makes "routed equals direct" and "cache hit equals miss"
// checks exact byte comparisons instead of field-by-field ones.
func canonicalRequested(r *http.Request) bool {
	v := r.URL.Query().Get("canonical")
	return v == "1" || v == "true"
}

// decodeEvents reads the request body as either evio binary or the JSON
// schema, returning the events plus the decoded JSON shell (nil for evio).
func (s *Server) decodeEvents(w http.ResponseWriter, r *http.Request, shell any, events *[]EventJSON) ([]*detector.Event, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") {
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(shell); err != nil {
			writeError(w, http.StatusBadRequest, "decode json: %v", err)
			return nil, false
		}
		evs, err := toEvents(*events)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return nil, false
		}
		return evs, true
	}
	evs, err := evio.NewReader(body).ReadAll()
	if err != nil {
		writeError(w, http.StatusBadRequest, "decode evio: %v", err)
		return nil, false
	}
	return evs, true
}

// ---- endpoints ----

func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	stop := s.metrics.StartStage("serve_localize")
	defer stop()
	s.metrics.Counter("serve_localize_requests").Inc()

	var req LocalizeRequest
	events, ok := s.decodeEvents(w, r, &req, &req.Events)
	if !ok {
		s.metrics.Counter("serve_localize_bad_request").Inc()
		return
	}
	if len(events) == 0 {
		s.metrics.Counter("serve_localize_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "no events in request")
		return
	}
	seed := req.Seed
	if v := r.URL.Query().Get("seed"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			seed = n
		}
	}
	if seed == 0 {
		seed = 1 // the adapt.Instrument.Localize default
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, wait := s.admit(ctx, w, "localize")
	if release == nil {
		return
	}
	defer release()

	set := s.store.current()
	res := s.inst.LocalizeEventsWithClassifier(events, set.bundle, set.classifier(), seed)
	s.metrics.Counter("serve_localize_ok").Inc()
	resp := localizeResponse(res, set.bundle != nil, wait.Seconds()*1e3)
	if canonicalRequested(r) {
		resp.TimingMs = TimingMs{}
		resp.QueueMs = 0
	}
	s.setModelHeaders(w, set)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	stop := s.metrics.StartStage("serve_classify")
	defer stop()
	s.metrics.Counter("serve_classify_requests").Inc()

	var req ClassifyRequest
	events, ok := s.decodeEvents(w, r, &req, &req.Events)
	if !ok {
		s.metrics.Counter("serve_classify_bad_request").Inc()
		return
	}
	polar := req.PolarDeg
	if v := r.URL.Query().Get("polar"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			polar = f
		}
	}

	set := s.store.current()
	if set.bundle == nil {
		writeError(w, http.StatusServiceUnavailable, "no models loaded; POST /admin/reload first")
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, wait := s.admit(ctx, w, "classify")
	if release == nil {
		return
	}
	defer release()

	pool := par.NewPool(s.inst.Workers)
	slots := make([]*recon.Ring, len(events))
	pool.ForRange(context.Background(), len(events), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if ring, okr := recon.Reconstruct(&s.inst.Recon, events[i]); okr {
				slots[i] = ring
			}
		}
	})
	rings := make([]*recon.Ring, 0, len(events))
	for _, ring := range slots {
		if ring != nil {
			rings = append(rings, ring)
		}
	}

	resp := &ClassifyResponse{
		Rings:      len(rings),
		PolarDeg:   polar,
		Threshold:  float64(set.bundle.Thr.For(polar)),
		Probs:      []float64{},
		Background: []bool{},
		QueueMs:    wait.Seconds() * 1e3,
	}
	if len(rings) > 0 {
		x := features.MatrixWith(pool, rings, polar, set.bundle.WithPolar)
		set.bundle.BkgNorm.ApplyWith(pool, x)
		probs := set.batcher.Probs(x)
		resp.Probs = make([]float64, len(probs))
		resp.Background = make([]bool, len(probs))
		for i, p := range probs {
			resp.Probs[i] = float64(p)
			resp.Background[i] = p > float32(resp.Threshold)
		}
	}
	if canonicalRequested(r) {
		resp.QueueMs = 0
	}
	s.metrics.Counter("serve_classify_ok").Inc()
	s.setModelHeaders(w, set)
	writeJSON(w, http.StatusOK, resp)
}

// handleSkymap localizes the posted events and returns the downlink-grade
// quantized sky map built from the surviving rings (internal/skymap). The
// whole path — solver, refinement, quantization, encoding — is a pure
// function of (request bytes, model generation, backend), so with
// ?canonical=1 the response is bitwise-deterministic and a fleet front
// door can serve it from its exact result cache.
func (s *Server) handleSkymap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	stop := s.metrics.StartStage("serve_skymap")
	defer stop()
	s.metrics.Counter("serve_skymap_requests").Inc()

	var req SkymapRequest
	events, ok := s.decodeEvents(w, r, &req, &req.Events)
	if !ok {
		s.metrics.Counter("serve_skymap_bad_request").Inc()
		return
	}
	if len(events) == 0 {
		s.metrics.Counter("serve_skymap_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "no events in request")
		return
	}
	q := r.URL.Query()
	seed := req.Seed
	if v := q.Get("seed"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			seed = n
		}
	}
	if seed == 0 {
		seed = 1
	}
	if v := q.Get("temp"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			req.Temperature = f
		}
	}
	if v := q.Get("bands"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			req.CoarseBands = n
		}
	}
	if v := q.Get("refine"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			req.RefineFactor = n
		}
	}
	switch {
	case req.Temperature < 0:
		s.metrics.Counter("serve_skymap_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "temperature must be positive (0 = default)")
		return
	case req.CoarseBands != 0 && (req.CoarseBands < 2 || req.CoarseBands > skymap.MaxCoarseBands):
		s.metrics.Counter("serve_skymap_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "coarse_bands must be in [2, %d]", skymap.MaxCoarseBands)
		return
	case req.RefineFactor != 0 && (req.RefineFactor < 1 || req.RefineFactor > skymap.MaxRefineFactor):
		s.metrics.Counter("serve_skymap_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "refine_factor must be in [1, %d]", skymap.MaxRefineFactor)
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, wait := s.admit(ctx, w, "skymap")
	if release == nil {
		return
	}
	defer release()

	set := s.store.current()
	res := s.inst.LocalizeEventsWithClassifier(events, set.bundle, set.classifier(), seed)
	resp := &SkymapResponse{
		OK:      res.Loc.OK,
		Rings:   res.Rings,
		Kept:    res.Kept,
		ML:      set.bundle != nil,
		QueueMs: wait.Seconds() * 1e3,
	}
	if res.Loc.OK {
		rings := res.ActiveRings
		var probs []float64
		if set.bundle != nil {
			polar := geom.Deg(geom.Polar(res.Loc.Dir))
			pipeline.ApplyDEtaCalibrated(set.bundle, rings, polar)
			probs = pipeline.BackgroundProbs(set.bundle, rings, polar)
		}
		opts := skymap.Options{
			Temperature:  req.Temperature,
			CoarseBands:  req.CoarseBands,
			RefineFactor: req.RefineFactor,
			Workers:      s.inst.Workers,
		}
		pm := skymap.FromRings(&s.inst.Loc, rings, probs, opts)
		resp.SkyMapB64 = pm.EncodeBase64()
		resp.PayloadBytes = pm.EncodedSize()
		resp.Temperature = float64(pm.Temperature)
		pk := pm.Peak()
		resp.PeakDir = &Vec3{X: pk.X, Y: pk.Y, Z: pk.Z}
		resp.Area68Deg2 = float64(pm.Area68)
		resp.Area90Deg2 = float64(pm.Area90)
	}
	if canonicalRequested(r) {
		resp.QueueMs = 0
	}
	s.metrics.Counter("serve_skymap_ok").Inc()
	s.setModelHeaders(w, set)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Path string `json:"path"`
	}
	if r.Body != nil {
		body := http.MaxBytesReader(w, r.Body, 1<<20)
		// An empty body is fine (use the configured path); malformed JSON
		// is not.
		if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "decode json: %v", err)
			return
		}
	}
	path := req.Path
	if path == "" {
		path = s.cfg.ModelPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no model path: pass {\"path\": ...} or start with -models")
		return
	}
	if err := s.store.reload(path); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	set := s.store.current()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"path":       set.path,
		"with_polar": set.bundle.WithPolar,
		"backend":    string(s.backend),
		"loaded_at":  set.loaded.UTC().Format(time.RFC3339Nano),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness as JSON while keeping the 200/503 load
// balancer contract: 200 means "send traffic", 503 means "draining". The
// body carries the live queue shape (in-flight, waiting, limits) and the
// model identity (generation, backend) so a fleet router can weight
// replicas by reported load and key its exact result cache, instead of
// treating readiness as a single bit.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	set := s.store.current()
	queueLimit := s.cfg.QueueDepth
	if queueLimit < 0 { // "no waiting room" reports a zero-size queue
		queueLimit = 0
	}
	resp := ReadyzResponse{
		Ready:           !s.draining.Load(),
		Draining:        s.draining.Load(),
		InFlight:        s.adm.computing(),
		QueueDepth:      s.adm.waiting(),
		MaxConcurrent:   s.cfg.MaxConcurrent,
		QueueLimit:      queueLimit,
		ModelGeneration: set.gen,
		ModelsLoaded:    set.bundle != nil,
		Backend:         string(s.backend),
	}
	status := http.StatusOK
	if resp.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bi := buildinfo.Get()
	fmt.Fprintf(w, "# TYPE adapt_build_info gauge\nadapt_build_info{version=%q,commit=%q,go_version=%q} 1\n",
		bi.Version, bi.Commit, bi.GoVersion)
	ml := 0
	if s.store.current().bundle != nil {
		ml = 1
	}
	fmt.Fprintf(w, "# TYPE adapt_models_loaded gauge\nadapt_models_loaded %d\n", ml)
	s.metrics.WritePrometheus(w, "adapt")
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, versionResponse{Info: buildinfo.Get(), Backend: string(s.backend)})
}

// versionResponse is /version's body: the build identity plus the
// inference backend this process serves with.
type versionResponse struct {
	buildinfo.Info
	Backend string `json:"backend"`
}
