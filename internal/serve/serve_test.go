package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/adapt"
	"repro/internal/background"
	"repro/internal/datagen"
	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/skymap"
	"repro/internal/xrand"
)

// tinyBundle trains a minimal model pair once for the package's tests.
var tinyBundle = func() func(t *testing.T) *models.Bundle {
	var once sync.Once
	var b *models.Bundle
	return func(t *testing.T) *models.Bundle {
		t.Helper()
		once.Do(func() {
			cfg := datagen.DefaultConfig(21)
			cfg.BurstsPerAngle = 1
			cfg.PolarAnglesDeg = []float64{0, 40, 80}
			set := datagen.Generate(cfg)
			opts := models.DefaultTrainOptions(22)
			opts.MaxEpochs = 4
			opts.BkgLR = 5e-3
			opts.BkgBatch = 512
			b = models.Train(set, opts)
		})
		return b
	}
}()

// simulateEvents builds one burst + background exposure.
func simulateEvents(fluence, polar float64, seed uint64) []*detector.Event {
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rng := xrand.New(seed)
	burst := detector.Burst{Fluence: fluence, PolarDeg: polar, AzimuthDeg: 77}
	events := detector.SimulateBurst(&det, burst, rng)
	return append(events, bg.Simulate(&det, 1.0, rng)...)
}

// evioBody serializes events into an evio request payload.
func evioBody(t *testing.T, events []*detector.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := evio.WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postLocalize(t *testing.T, client *http.Client, url string, body []byte, ct string) (*LocalizeResponse, *http.Response) {
	t.Helper()
	resp, err := client.Post(url+"/v1/localize", ct, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/localize: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var lr LocalizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &lr, resp
}

// TestLocalizeDeterminismEvio is the end-to-end determinism acceptance
// test: for the same evio event set, seed, and models, the service
// response is bitwise-identical to a direct adapt.Instrument call — even
// though the service routes NN inference through the shared micro-batcher.
func TestLocalizeDeterminismEvio(t *testing.T) {
	bundle := tinyBundle(t)
	events := simulateEvents(1.0, 30, 7)
	body := evioBody(t, events)

	srv := New(Config{Bundle: bundle})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const seed = 9
	r2, err := ts.Client().Post(ts.URL+"/v1/localize?seed=9", ContentTypeEvio, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r2.StatusCode)
	}
	var viaSeed LocalizeResponse
	if err := json.NewDecoder(r2.Body).Decode(&viaSeed); err != nil {
		t.Fatal(err)
	}

	// The direct reference runs on the evio-round-tripped events — exactly
	// the bytes the service decoded.
	ref, err := evio.NewReader(bytes.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	inst := adapt.DefaultInstrument()
	direct := inst.LocalizeEvents(ref, bundle, seed)

	if !viaSeed.OK || !direct.Loc.OK {
		t.Fatalf("localization failed: service OK=%v direct OK=%v", viaSeed.OK, direct.Loc.OK)
	}
	cmp := func(name string, got, want float64) {
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: service %v != direct %v (not bitwise identical)", name, got, want)
		}
	}
	cmp("dir.x", viaSeed.Dir.X, direct.Loc.Dir.X)
	cmp("dir.y", viaSeed.Dir.Y, direct.Loc.Dir.Y)
	cmp("dir.z", viaSeed.Dir.Z, direct.Loc.Dir.Z)
	cmp("error_radius_deg", viaSeed.ErrorRadiusDeg, direct.ErrorRadiusDeg)
	if viaSeed.Rings != direct.Rings || viaSeed.Kept != direct.Kept ||
		viaSeed.NNIterations != direct.NNIterations {
		t.Errorf("counts differ: service (%d,%d,%d) direct (%d,%d,%d)",
			viaSeed.Rings, viaSeed.Kept, viaSeed.NNIterations,
			direct.Rings, direct.Kept, direct.NNIterations)
	}
	if !viaSeed.ML {
		t.Error("response should report ml=true")
	}
}

// TestLocalizeJSONBody drives the JSON request schema and checks it
// matches a direct run on the same (un-rounded) events.
func TestLocalizeJSONBody(t *testing.T) {
	events := simulateEvents(0.8, 20, 3)
	req := LocalizeRequest{Seed: 5}
	for _, ev := range events {
		je := EventJSON{ArrivalS: ev.ArrivalTime}
		for _, h := range ev.Hits {
			je.Hits = append(je.Hits, HitJSON{
				PosCm:     [3]float64{h.Pos.X, h.Pos.Y, h.Pos.Z},
				EMeV:      h.E,
				SigmaCm:   [3]float64{h.SigmaX, h.SigmaY, h.SigmaZ},
				SigmaEMeV: h.SigmaE,
				Layer:     h.Layer,
			})
		}
		req.Events = append(req.Events, je)
	}
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}

	srv := New(Config{}) // no models: prior pipeline
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	got, resp := postLocalize(t, ts.Client(), ts.URL, body, ContentTypeJSON)
	if got == nil {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.ML {
		t.Error("no-model server must report ml=false")
	}

	// Ground-truth fields are stripped by the JSON schema; rebuild plain
	// events for the reference run.
	stripped := make([]*detector.Event, len(events))
	for i, ev := range events {
		stripped[i] = &detector.Event{Hits: ev.Hits, ArrivalTime: ev.ArrivalTime}
	}
	inst := adapt.DefaultInstrument()
	direct := inst.LocalizeEvents(stripped, nil, 5)
	if !got.OK || !direct.Loc.OK {
		t.Fatalf("localization failed: service %v direct %v", got.OK, direct.Loc.OK)
	}
	if math.Float64bits(got.Dir.X) != math.Float64bits(direct.Loc.Dir.X) ||
		math.Float64bits(got.Dir.Y) != math.Float64bits(direct.Loc.Dir.Y) ||
		math.Float64bits(got.Dir.Z) != math.Float64bits(direct.Loc.Dir.Z) {
		t.Errorf("JSON-path direction differs from direct run: %+v vs %+v", got.Dir, direct.Loc.Dir)
	}
}

// TestConcurrentLoadThroughBatcher is the load acceptance test: ≥32
// concurrent requests share the micro-batcher; every admitted request gets
// a response, and every response is identical (the batcher must not leak
// rows across requests).
func TestConcurrentLoadThroughBatcher(t *testing.T) {
	bundle := tinyBundle(t)
	events := simulateEvents(0.6, 40, 11)
	body := evioBody(t, events)

	srv := New(Config{
		Bundle:        bundle,
		MaxConcurrent: 8,
		QueueDepth:    64,   // roomy: nothing should be rejected
		BatchRows:     4096, // several requests' rows fit one batch
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Timeout = 120 * time.Second

	const n = 32
	type out struct {
		resp   *LocalizeResponse
		status int
	}
	results := make([]out, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := client.Post(ts.URL+"/v1/localize?seed=4", ContentTypeEvio, bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer r.Body.Close()
			results[i].status = r.StatusCode
			if r.StatusCode == http.StatusOK {
				var lr LocalizeResponse
				if err := json.NewDecoder(r.Body).Decode(&lr); err != nil {
					t.Errorf("request %d: decode: %v", i, err)
					return
				}
				results[i].resp = &lr
			}
		}(i)
	}
	wg.Wait()

	var first *LocalizeResponse
	for i := range results {
		if results[i].status != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 (queue depth was ample)", i, results[i].status)
		}
		lr := results[i].resp
		if lr == nil || !lr.OK {
			t.Fatalf("request %d: missing or failed localization", i)
		}
		if first == nil {
			first = lr
			continue
		}
		if math.Float64bits(lr.Dir.X) != math.Float64bits(first.Dir.X) ||
			math.Float64bits(lr.Dir.Y) != math.Float64bits(first.Dir.Y) ||
			math.Float64bits(lr.Dir.Z) != math.Float64bits(first.Dir.Z) ||
			lr.Rings != first.Rings || lr.Kept != first.Kept {
			t.Errorf("request %d: result differs under concurrency: %+v vs %+v", i, lr, first)
		}
	}
	// The batcher must actually have coalesced work across requests.
	if srv.Metrics().Counter("serve_nn_batches").Load() == 0 {
		t.Error("micro-batcher never ran")
	}
	if got := srv.Metrics().Counter("serve_localize_ok").Load(); got != n {
		t.Errorf("serve_localize_ok = %d, want %d", got, n)
	}
}

// TestOverloadBackpressure fills the queue and checks 429 + Retry-After,
// then that the queue is not wedged afterwards.
func TestOverloadBackpressure(t *testing.T) {
	bundle := tinyBundle(t)
	body := evioBody(t, simulateEvents(1.0, 30, 13))

	srv := New(Config{
		Bundle:        bundle,
		MaxConcurrent: 1,
		QueueDepth:    -1, // no waiting room: 2nd concurrent request is refused
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Timeout = 120 * time.Second

	const n = 16
	statuses := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := client.Post(ts.URL+"/v1/localize", ContentTypeEvio, bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer r.Body.Close()
			statuses[i] = r.StatusCode
			retryAfter[i] = r.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	okN, rejN := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			okN++
		case http.StatusTooManyRequests:
			rejN++
			if retryAfter[i] == "" {
				t.Errorf("429 response %d missing Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	if okN == 0 {
		t.Error("no request succeeded under overload")
	}
	if rejN == 0 {
		t.Error("no request was rejected: overload never triggered (flaky only if runs fully serialized)")
	}
	// The queue must recover: a single follow-up request succeeds.
	lr, resp := postLocalize(t, client, ts.URL, body, ContentTypeEvio)
	if lr == nil {
		t.Fatalf("post-overload request failed with status %d: queue wedged", resp.StatusCode)
	}
	if got := srv.Metrics().Counter("serve_localize_rejected").Load(); got != int64(rejN) {
		t.Errorf("serve_localize_rejected = %d, want %d", got, rejN)
	}
}

// TestGracefulDrain starts a real listener, puts requests in flight, and
// checks Shutdown completes them all before returning.
func TestGracefulDrain(t *testing.T) {
	bundle := tinyBundle(t)
	body := evioBody(t, simulateEvents(1.0, 30, 17))

	srv := New(Config{Bundle: bundle, MaxConcurrent: 2, QueueDepth: 16})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	// Readiness up.
	r, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", r.StatusCode)
	}

	const n = 6
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: 120 * time.Second}
			resp, err := client.Post(base+"/v1/localize", ContentTypeEvio, bytes.NewReader(body))
			if err != nil {
				t.Errorf("in-flight request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}

	// Let the requests reach the server before draining.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Counter("serve_localize_requests").Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("in-flight request %d got status %d during drain", i, st)
		}
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after Shutdown", err)
	}
	// Draining flips readiness (checked via the handler directly; the
	// listener is closed by now).
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d after drain, want 503", rec.Code)
	}
}

// TestHotReload installs models into a running no-ML server and checks
// in-flight semantics: old requests finish, new requests use the models.
func TestHotReload(t *testing.T) {
	bundle := tinyBundle(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "models.gob")
	if err := adapt.SaveModels(bundle, path); err != nil {
		t.Fatal(err)
	}
	body := evioBody(t, simulateEvents(0.8, 30, 19))

	// Explicit sizing: on a small GOMAXPROCS box the defaults are tight
	// enough that this test's 8-way burst would (correctly) see 429s.
	srv := New(Config{MaxConcurrent: 4, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before, _ := postLocalize(t, ts.Client(), ts.URL, body, ContentTypeEvio)
	if before == nil || before.ML {
		t.Fatalf("pre-reload request: %+v", before)
	}

	reload, err := ts.Client().Post(ts.URL+"/admin/reload", ContentTypeJSON,
		strings.NewReader(fmt.Sprintf(`{"path": %q}`, path)))
	if err != nil {
		t.Fatal(err)
	}
	defer reload.Body.Close()
	if reload.StatusCode != http.StatusOK {
		t.Fatalf("/admin/reload = %d", reload.StatusCode)
	}

	after, _ := postLocalize(t, ts.Client(), ts.URL, body, ContentTypeEvio)
	if after == nil || !after.ML {
		t.Fatalf("post-reload request not using models: %+v", after)
	}
	if after.NNIterations == 0 {
		t.Error("post-reload run never entered the NN loop")
	}

	// Reload again while requests are in flight: nobody drops.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lr, resp := postLocalize(t, ts.Client(), ts.URL, body, ContentTypeEvio)
			if lr == nil {
				t.Errorf("in-flight request during reload: status %d", resp.StatusCode)
			}
		}()
	}
	for i := 0; i < 3; i++ {
		r, err := ts.Client().Post(ts.URL+"/admin/reload", ContentTypeJSON,
			strings.NewReader(fmt.Sprintf(`{"path": %q}`, path)))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	wg.Wait()

	// Bad path must not clobber the live generation.
	r, err := ts.Client().Post(ts.URL+"/admin/reload", ContentTypeJSON,
		strings.NewReader(`{"path": "/nonexistent/models.gob"}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad reload = %d, want 422", r.StatusCode)
	}
	still, _ := postLocalize(t, ts.Client(), ts.URL, body, ContentTypeEvio)
	if still == nil || !still.ML {
		t.Error("failed reload dropped the live models")
	}
}

// TestClassifyEndpoint scores a batch of events and cross-checks the
// flags against the returned threshold.
func TestClassifyEndpoint(t *testing.T) {
	bundle := tinyBundle(t)
	body := evioBody(t, simulateEvents(0.8, 40, 23))

	srv := New(Config{Bundle: bundle})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/classify?polar=40", ContentTypeEvio, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Rings == 0 {
		t.Fatal("no rings reconstructed")
	}
	if len(cr.Probs) != cr.Rings || len(cr.Background) != cr.Rings {
		t.Fatalf("array sizes: %d probs, %d flags, %d rings", len(cr.Probs), len(cr.Background), cr.Rings)
	}
	for i, p := range cr.Probs {
		if p < 0 || p > 1 {
			t.Errorf("prob %d = %v out of range", i, p)
		}
		if cr.Background[i] != (p > cr.Threshold) {
			t.Errorf("flag %d inconsistent with threshold", i)
		}
	}

	// Without models the endpoint refuses rather than guessing.
	bare := New(Config{})
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	r2, err := tsBare.Client().Post(tsBare.URL+"/v1/classify", ContentTypeEvio, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("no-model classify = %d, want 503", r2.StatusCode)
	}
}

// TestEndpointsMisc covers health, version, metrics, and bad input paths.
func TestEndpointsMisc(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return r, sb.String()
	}

	if r, body := get("/healthz"); r.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", r.StatusCode, body)
	}
	if r, body := get("/readyz"); r.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q", r.StatusCode, body)
	}
	if r, body := get("/metrics"); r.StatusCode != http.StatusOK ||
		!strings.Contains(body, "adapt_build_info") || !strings.Contains(body, "adapt_models_loaded 0") {
		t.Errorf("/metrics = %d %q", r.StatusCode, body)
	}
	if r, body := get("/version"); r.StatusCode != http.StatusOK || !strings.Contains(body, "go_version") {
		t.Errorf("/version = %d %q", r.StatusCode, body)
	}

	// GET on a POST endpoint.
	if r, _ := get("/v1/localize"); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/localize = %d, want 405", r.StatusCode)
	}
	// Garbage bodies are 400s, not panics.
	for _, tc := range []struct{ ct, body string }{
		{ContentTypeEvio, "not evio at all"},
		{ContentTypeJSON, `{"events": [`},
		{ContentTypeJSON, `{"unknown_field": 1}`},
		{ContentTypeJSON, `{"events": []}`},
	} {
		r, err := ts.Client().Post(ts.URL+"/v1/localize", tc.ct, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", tc.body, r.StatusCode)
		}
	}
}

// TestLoadGenerator runs the built-in load generator against an httptest
// server and checks the report plumbing (percentiles from obs histograms).
func TestLoadGenerator(t *testing.T) {
	bundle := tinyBundle(t)
	body := evioBody(t, simulateEvents(0.5, 20, 29))

	srv := New(Config{Bundle: bundle})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		TargetURL:   ts.URL + "/v1/localize",
		Body:        body,
		QPS:         40,
		Duration:    1500 * time.Millisecond,
		Concurrency: 4,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("loadgen made no progress: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Errorf("loadgen saw %d failures", rep.Failed)
	}
	if rep.Latency.Count != rep.OK+rep.Rejected {
		t.Errorf("latency samples %d != completed %d", rep.Latency.Count, rep.OK+rep.Rejected)
	}
	if rep.Latency.P50Ms <= 0 || rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Errorf("implausible percentiles: %+v", rep.Latency)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"p50", "p90", "p99", "ok "} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAdmissionUnit pins the admission-control state machine.
func TestAdmissionUnit(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second caller fits in the waiting room but must time out waiting.
	ctx2, cancel2 := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel2()
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx2) }()
	// Third caller overflows the waiting room immediately.
	time.Sleep(5 * time.Millisecond)
	if err := a.acquire(ctx); err != errOverload {
		t.Errorf("third acquire = %v, want overload", err)
	}
	if err := <-errc; err != context.DeadlineExceeded {
		t.Errorf("queued acquire = %v, want deadline exceeded", err)
	}
	// Slot holder releases; the queue must accept again.
	a.release()
	if err := a.acquire(ctx); err != nil {
		t.Errorf("post-release acquire: %v", err)
	}
	a.release()
	if q := a.queued(); q != 0 {
		t.Errorf("queued = %d after all releases", q)
	}
}

// TestSkymapEndpoint drives POST /v1/skymap: the canonical response must
// be bitwise-deterministic across repeated requests (the property the
// router's exact result cache relies on), the payload must decode and
// round-trip, and its peak must agree with /v1/localize on the same body.
func TestSkymapEndpoint(t *testing.T) {
	bundle := tinyBundle(t)
	events := simulateEvents(1.0, 30, 7)
	body := evioBody(t, events)

	srv := New(Config{Bundle: bundle})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(url string) ([]byte, int) {
		resp, err := ts.Client().Post(url, ContentTypeEvio, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw, resp.StatusCode
	}

	url := ts.URL + "/v1/skymap?seed=9&canonical=1"
	raw1, code1 := post(url)
	raw2, code2 := post(url)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d / %d", code1, code2)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("canonical /v1/skymap responses are not bitwise identical")
	}

	var sr SkymapResponse
	if err := json.Unmarshal(raw1, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.OK || sr.SkyMapB64 == "" {
		t.Fatalf("no map in response: %+v", sr)
	}
	m, err := skymap.DecodeBase64(sr.SkyMapB64)
	if err != nil {
		t.Fatalf("payload does not decode: %v", err)
	}
	if m.EncodeBase64() != sr.SkyMapB64 {
		t.Fatal("payload does not round-trip through the endpoint")
	}
	if sr.PayloadBytes != m.EncodedSize() {
		t.Errorf("payload_bytes %d, actual %d", sr.PayloadBytes, m.EncodedSize())
	}
	if sr.Temperature != skymap.DefaultTemperature {
		t.Errorf("default temperature %v, want %v", sr.Temperature, skymap.DefaultTemperature)
	}
	if sr.Area68Deg2 <= 0 || sr.Area68Deg2 > sr.Area90Deg2 {
		t.Errorf("areas (%v, %v) not ordered", sr.Area68Deg2, sr.Area90Deg2)
	}

	// The localized direction the same request produces lies inside the
	// map's tempered 90% credible region. (The map is the background-aware
	// mixture surface, so its peak can sit a few pixels from the solver's
	// point estimate; containment is the contract a notice consumer needs.)
	lr, resp := postLocalize(t, ts.Client(), ts.URL, body, ContentTypeEvio)
	if lr == nil {
		t.Fatalf("localize status %d", resp.StatusCode)
	}
	if !m.Contains(geom.Vec{X: lr.Dir.X, Y: lr.Dir.Y, Z: lr.Dir.Z}, 0.90) {
		t.Error("localized direction outside the map's 90% credible region")
	}

	// The statistical map (temp=1) is narrower than the tempered default.
	rawT, codeT := post(ts.URL + "/v1/skymap?seed=9&canonical=1&temp=1")
	if codeT != http.StatusOK {
		t.Fatalf("temp=1 status %d", codeT)
	}
	var srT SkymapResponse
	if err := json.Unmarshal(rawT, &srT); err != nil {
		t.Fatal(err)
	}
	if srT.Temperature != 1 || srT.Area90Deg2 >= sr.Area90Deg2 {
		t.Errorf("temp=1 map (T=%v, area90=%v) not narrower than default (area90=%v)",
			srT.Temperature, srT.Area90Deg2, sr.Area90Deg2)
	}

	// Out-of-range parameters are a client error, not a panic.
	for _, q := range []string{"temp=-1", "bands=1", "bands=99", "refine=9"} {
		if _, code := post(ts.URL + "/v1/skymap?" + q); code != http.StatusBadRequest {
			t.Errorf("%s accepted with status %d", q, code)
		}
	}
}
