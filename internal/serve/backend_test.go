package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/adapt"
	"repro/internal/datagen"
	"repro/internal/models"
)

// quantBundle trains a PTQ-quantized bundle once for the backend tests.
var quantBundle = func() func(t *testing.T) *models.Bundle {
	var once sync.Once
	var b *models.Bundle
	return func(t *testing.T) *models.Bundle {
		t.Helper()
		once.Do(func() {
			cfg := datagen.DefaultConfig(61)
			cfg.BurstsPerAngle = 1
			cfg.PolarAnglesDeg = []float64{0, 40, 80}
			set := datagen.Generate(cfg)
			opts := models.DefaultTrainOptions(62)
			opts.MaxEpochs = 4
			opts.BkgLR = 5e-3
			opts.BkgBatch = 512
			opts.Swapped = true
			b = models.Train(set, opts)
			qopts := models.DefaultQuantizeOptions(63)
			qopts.Mode = models.ModePTQ
			int8net, _, err := models.QuantizeBackground(b, set, qopts)
			if err != nil {
				panic(err)
			}
			b.Int8 = int8net
		})
		return b
	}
}()

func getVersion(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	r, err := ts.Client().Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/version = %d", r.StatusCode)
	}
	var v map[string]any
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestVersionReportsBackend: /version must state which arithmetic the
// server runs, so a fleet operator can audit deployments.
func TestVersionReportsBackend(t *testing.T) {
	deflt := New(Config{})
	ts := httptest.NewServer(deflt.Handler())
	defer ts.Close()
	if v := getVersion(t, ts); v["backend"] != "float32" {
		t.Errorf("default backend = %v, want float32", v["backend"])
	}

	qb := quantBundle(t)
	int8srv := New(Config{Backend: adapt.BackendInt8, Bundle: qb})
	ts8 := httptest.NewServer(int8srv.Handler())
	defer ts8.Close()
	if v := getVersion(t, ts8); v["backend"] != "int8" {
		t.Errorf("int8 server reports backend %v", v["backend"])
	}
}

// TestBackendLocalizeParity: the int8 and fpga-sim servers must both
// localize, and must agree with each other bitwise (identical integer
// arithmetic) on the same request.
func TestBackendLocalizeParity(t *testing.T) {
	qb := quantBundle(t)
	body := evioBody(t, simulateEvents(1.5, 40, 71))

	responses := map[adapt.Backend]*LocalizeResponse{}
	for _, backend := range []adapt.Backend{adapt.BackendFloat32, adapt.BackendInt8, adapt.BackendFPGASim} {
		srv := New(Config{Backend: backend, Bundle: qb})
		ts := httptest.NewServer(srv.Handler())
		lr, resp := postLocalize(t, ts.Client(), ts.URL, body, ContentTypeEvio)
		ts.Close()
		if lr == nil {
			t.Fatalf("backend %s: status %d", backend, resp.StatusCode)
		}
		if !lr.ML {
			t.Fatalf("backend %s: response not ML", backend)
		}
		responses[backend] = lr
	}

	i8, fp := responses[adapt.BackendInt8], responses[adapt.BackendFPGASim]
	if i8.PolarDeg != fp.PolarDeg || i8.AzimuthDeg != fp.AzimuthDeg || i8.NNIterations != fp.NNIterations {
		t.Errorf("int8 and fpga-sim disagree: %+v vs %+v", i8, fp)
	}
	// float32 may drift within quantization error, but must stay close on
	// a bright burst.
	f32 := responses[adapt.BackendFloat32]
	if d := f32.PolarDeg - i8.PolarDeg; d > 5 || d < -5 {
		t.Errorf("int8 polar %v far from float32 %v", i8.PolarDeg, f32.PolarDeg)
	}
}

// TestReloadKeepsBackendContract: on an int8 server, reloading an
// unquantized bundle must fail with 422 and leave the previous quantized
// generation serving.
func TestReloadKeepsBackendContract(t *testing.T) {
	qb := quantBundle(t)
	plain := tinyBundle(t) // unswapped, no Int8
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "plain.gob")
	if err := adapt.SaveModels(plain, plainPath); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{Backend: adapt.BackendInt8, Bundle: qb})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r, err := ts.Client().Post(ts.URL+"/admin/reload", ContentTypeJSON,
		strings.NewReader(`{"path": "`+plainPath+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("reload of unquantized bundle on int8 backend = %d, want 422", r.StatusCode)
	}

	body := evioBody(t, simulateEvents(1.5, 40, 73))
	lr, resp := postLocalize(t, ts.Client(), ts.URL, body, ContentTypeEvio)
	if lr == nil || !lr.ML {
		t.Fatalf("previous generation lost after failed reload: %+v (status %v)", lr, resp.StatusCode)
	}
}

func TestNewPanicsOnBadBackend(t *testing.T) {
	cases := []Config{
		{Backend: "fp16"},
		{Backend: adapt.BackendInt8, Bundle: tinyBundle(t)},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}
