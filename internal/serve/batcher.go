// Package serve is the network serving layer over the localization
// pipeline: an HTTP service (adaptserve) that multiplexes many concurrent
// localization and classification requests through the race-clean parallel
// pipeline, coalescing their NN inference in a dynamic micro-batcher,
// bounding admission with explicit backpressure, and exposing the obs
// metrics registry as a Prometheus endpoint.
package serve

import (
	"sync"
	"time"

	"repro/adapt"
	"repro/internal/nn"
	"repro/internal/obs"
)

// Batcher coalesces single-output NN inference across concurrent callers:
// feature matrices submitted while a batch is open are concatenated and
// evaluated in one forward pass of the wrapped classifier — whichever
// inference backend the server was configured with (float32, int8, or
// fpga-sim). A batch is flushed when its pending rows reach MaxRows (size
// trigger) or when the oldest pending submission has waited Window
// (deadline trigger). Because every backend is row-independent at
// inference time (the FP32 layers per-row, the integer GEMM exactly),
// each caller's probabilities are bitwise identical to an unbatched
// evaluation — batching trades a bounded latency (≤ Window) for
// cross-request throughput without touching results. The coalesced rows
// are also what makes the int8 backend pay off: one requantization setup
// amortizes over every row of the combined batch.
//
// Batcher implements the pipeline's BkgClassifier contract (Probs) and its
// ProbsInto fast path, so it can be injected into a run via
// adapt.Instrument.LocalizeEventsWithClassifier.
type Batcher struct {
	cls     adapt.BkgClassifier
	maxRows int
	window  time.Duration
	metrics *obs.Registry

	mu      sync.Mutex
	pending []batchItem
	rows    int
	timer   *time.Timer
	closed  bool
}

// batchItem is one caller's submission: its feature rows, the caller-owned
// output slice, and the channel closed once the outputs are written.
type batchItem struct {
	x    *nn.Tensor
	out  []float32
	done chan struct{}
}

// Batching defaults.
const (
	// DefaultBatchRows flushes a batch once this many rows are pending.
	// A typical request contributes ~600 rows per classifier pass (the
	// paper's mean first-pass ring count is 597), so the trigger is sized
	// for a few concurrent requests to coalesce; a lone request flushes by
	// window instead.
	DefaultBatchRows = 2048
	// DefaultBatchWindow bounds how long a submission waits for the batch
	// to fill.
	DefaultBatchWindow = 2 * time.Millisecond
)

// NewBatcher wraps a backend classifier. maxRows <= 0 means
// DefaultBatchRows; window <= 0 means DefaultBatchWindow. metrics may be
// nil.
func NewBatcher(cls adapt.BkgClassifier, maxRows int, window time.Duration, metrics *obs.Registry) *Batcher {
	if maxRows <= 0 {
		maxRows = DefaultBatchRows
	}
	if window <= 0 {
		window = DefaultBatchWindow
	}
	return &Batcher{cls: cls, maxRows: maxRows, window: window, metrics: metrics}
}

// Probs implements pipeline.BkgClassifier.
func (b *Batcher) Probs(x *nn.Tensor) []float32 {
	out := make([]float32, x.Rows)
	b.ProbsInto(x, out)
	return out
}

// ProbsInto submits x for batched inference and blocks until out holds one
// probability per row. Submissions already at or above the size trigger,
// and submissions after Close, are evaluated directly.
func (b *Batcher) ProbsInto(x *nn.Tensor, out []float32) {
	if x.Rows == 0 {
		return
	}
	b.mu.Lock()
	if b.closed || x.Rows >= b.maxRows {
		b.mu.Unlock()
		b.metrics.Counter("serve_nn_direct").Inc()
		adapt.ClassifierProbsInto(b.cls, x, out)
		return
	}
	item := batchItem{x: x, out: out, done: make(chan struct{})}
	b.pending = append(b.pending, item)
	b.rows += x.Rows
	if b.rows >= b.maxRows {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.metrics.Counter("serve_nn_flush_size").Inc()
		b.run(batch)
		return // our item was part of the flushed batch
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.window, b.flushWindow)
	}
	b.mu.Unlock()
	<-item.done
}

// takeLocked detaches the pending batch. Callers hold b.mu.
func (b *Batcher) takeLocked() []batchItem {
	batch := b.pending
	b.pending = nil
	b.rows = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flushWindow is the deadline trigger, run on the timer goroutine.
func (b *Batcher) flushWindow() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.metrics.Counter("serve_nn_flush_window").Inc()
		b.run(batch)
	}
}

// run evaluates one detached batch and distributes the outputs.
func (b *Batcher) run(batch []batchItem) {
	stop := b.metrics.StartStage("serve_nn_batch")
	defer stop()
	b.metrics.Counter("serve_nn_batches").Inc()
	if len(batch) == 1 {
		it := batch[0]
		b.metrics.Counter("serve_nn_batch_rows").Add(int64(it.x.Rows))
		adapt.ClassifierProbsInto(b.cls, it.x, it.out)
		close(it.done)
		return
	}
	cols := batch[0].x.Cols
	total := 0
	for _, it := range batch {
		if it.x.Cols != cols {
			panic("serve: batcher fed tensors of mismatched width")
		}
		total += it.x.Rows
	}
	b.metrics.Counter("serve_nn_batch_rows").Add(int64(total))
	b.metrics.Counter("serve_nn_coalesced").Add(int64(len(batch)))
	x := nn.NewTensor(total, cols)
	off := 0
	for _, it := range batch {
		copy(x.Data[off*cols:], it.x.Data[:it.x.Rows*cols])
		off += it.x.Rows
	}
	probs := make([]float32, total)
	adapt.ClassifierProbsInto(b.cls, x, probs)
	off = 0
	for _, it := range batch {
		copy(it.out, probs[off:off+it.x.Rows])
		off += it.x.Rows
		close(it.done)
	}
}

// Close flushes any pending batch and makes future submissions evaluate
// directly (unbatched). In-flight holders of a superseded Batcher — e.g.
// requests that captured a model set just before a hot reload — therefore
// still complete correctly after the registry moves on.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.run(batch)
	}
}
