package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/adapt"
	"repro/internal/models"
	"repro/internal/obs"
)

// modelSet is one immutable generation of serving models: a bundle plus the
// micro-batcher bound to its background network. Requests capture the
// current generation at admission and keep it for their whole run, so a hot
// reload never mixes one generation's network with another's thresholds.
type modelSet struct {
	bundle  *models.Bundle
	batcher *Batcher
	// path records where the bundle came from, for /admin/reload replies.
	path string
	// loaded is when this generation was installed.
	loaded time.Time
	// gen numbers this generation: 0 for the initial empty set, then one
	// per install. Responses carry it (X-Adapt-Model-Generation) and
	// /readyz reports it, so a fleet front door can key an exact result
	// cache on which weights actually produced a body.
	gen uint64
}

// classifier returns the batcher as the pipeline's background classifier,
// or a nil interface for the no-ML generation (a typed-nil would defeat the
// pipeline's `override == nil` fallback).
func (m *modelSet) classifier() adapt.BkgClassifier {
	if m == nil || m.bundle == nil {
		return nil
	}
	return m.batcher
}

// modelStore is the server's model registry: an atomically swappable
// modelSet. Swap installs a new generation without blocking readers;
// the superseded generation's batcher is closed (flushing its pending
// batch) but keeps serving direct inference to requests that captured it.
// The store is pinned to one inference backend for its lifetime — a hot
// reload swaps the weights, never the arithmetic, so a fleet's /version
// answer stays truthful across reloads.
type modelStore struct {
	cur        atomic.Pointer[modelSet]
	backend    adapt.Backend
	newBatcher func(cls adapt.BkgClassifier) *Batcher
	metrics    *obs.Registry
	// genc issues generation numbers; install n gets generation n.
	genc atomic.Uint64
	// reloadMu serializes reloads so two concurrent /admin/reload calls
	// cannot interleave load-then-swap.
	reloadMu sync.Mutex
}

func newModelStore(backend adapt.Backend, newBatcher func(adapt.BkgClassifier) *Batcher, metrics *obs.Registry) *modelStore {
	s := &modelStore{backend: backend, newBatcher: newBatcher, metrics: metrics}
	s.cur.Store(&modelSet{})
	return s
}

// current returns the live generation (never nil).
func (s *modelStore) current() *modelSet { return s.cur.Load() }

// install makes bundle the live generation. A nil bundle switches the
// service to the no-ML pipeline. It fails — leaving the previous
// generation live — when the bundle cannot implement the store's backend
// (int8/fpga-sim without a quantized model).
func (s *modelStore) install(bundle *models.Bundle, path string) error {
	set := &modelSet{bundle: bundle, path: path, loaded: time.Now(), gen: s.genc.Add(1)}
	if bundle != nil {
		cls, err := adapt.NewClassifier(s.backend, bundle)
		if err != nil {
			return err
		}
		set.batcher = s.newBatcher(cls)
	}
	old := s.cur.Swap(set)
	if old != nil && old.batcher != nil {
		old.batcher.Close()
	}
	s.metrics.Counter("serve_model_reloads").Inc()
	return nil
}

// reload loads a bundle from path and installs it.
func (s *modelStore) reload(path string) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	bundle, err := adapt.LoadModels(path)
	if err != nil {
		return fmt.Errorf("load models from %s: %w", path, err)
	}
	return s.install(bundle, path)
}
