// Package obs is a lightweight observability layer for the pipeline's hot
// path: atomic counters, stage timers, and latency histograms, collected in
// a Registry that dumps as text or JSON. It turns the paper's Tables I/II
// per-stage latency decomposition into a first-class runtime report instead
// of a one-off experiment.
//
// Design constraints, in order:
//
//   - the record path must be cheap and allocation-free (a few atomic ops),
//     because it sits inside the per-burst latency budget it measures;
//   - everything is safe for concurrent use, since stages now run on the
//     internal/par worker pool;
//   - a nil *Registry is a valid "metrics off" sink: every method no-ops,
//     so instrumented code needs no conditionals.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic event counter. The zero
// value is ready to use; nil counters ignore Add and report zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 level — ring-buffer occupancy, an
// estimated background rate — that can move both ways, unlike a Counter.
// The zero value is ready to use; nil gauges ignore Set/Add and load zero.
// The value is stored as float64 bits in an atomic word, so Set is a single
// store and concurrent readers never observe a torn value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by delta (negative deltas decrement).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current gauge value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: numBuckets exponential buckets spanning
// [minBucket, minBucket·growth^(numBuckets-1)], covering 1µs–~107s of
// latency with two buckets per octave. Observations outside the range
// clamp into the end buckets.
const (
	numBuckets = 54
	minBucket  = time.Microsecond
)

var bucketBounds = func() [numBuckets]time.Duration {
	var b [numBuckets]time.Duration
	v := float64(minBucket)
	for i := range b {
		b[i] = time.Duration(v)
		v *= math.Sqrt2
	}
	return b
}()

// Histogram records a latency distribution in fixed log-spaced buckets with
// atomic counts — concurrent Observe calls never lock. The zero value is
// ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	// min holds min+1 nanoseconds so the zero value means "no samples";
	// max holds nanoseconds directly (0 is correct for no samples).
	min atomic.Int64
	max atomic.Int64
}

// bucketIndex returns the smallest bucket whose upper bound is >= d.
func bucketIndex(d time.Duration) int {
	lo, hi := 0, numBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBounds[mid] >= d {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= int64(d)+1 {
			break
		}
		if h.min.CompareAndSwap(cur, int64(d)+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= int64(d) {
			break
		}
		if h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average recorded latency (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Min returns the smallest recorded sample (0 with no samples).
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	v := h.min.Load()
	if v == 0 {
		return 0
	}
	return time.Duration(v - 1)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Percentile returns an upper bound on the p-quantile (p in [0, 1]) of the
// recorded samples: the upper bound of the first bucket at which the
// cumulative count reaches p·total. The estimate is conservative by at most
// one bucket width (a factor of √2).
func (h *Histogram) Percentile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	need := int64(math.Ceil(p * float64(total)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= need {
			// Clamp the reported bound to the observed max so a single
			// sample does not report a bucket edge far above it.
			ub := bucketBounds[i]
			if mx := h.Max(); mx < ub {
				ub = mx
			}
			return ub
		}
	}
	return h.Max()
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	MinMs float64 `json:"min_ms"`
	MaxMs float64 `json:"max_ms"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	SumMs float64 `json:"sum_ms"`
	// MeanMs = SumMs/Count, precomputed for report readers.
	MeanMs float64 `json:"mean_ms"`
}

// Snapshot captures the histogram's summary statistics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
	return HistogramSnapshot{
		Count:  h.Count(),
		MinMs:  ms(h.Min()),
		MaxMs:  ms(h.Max()),
		P50Ms:  ms(h.Percentile(0.50)),
		P90Ms:  ms(h.Percentile(0.90)),
		P99Ms:  ms(h.Percentile(0.99)),
		SumMs:  ms(h.Sum()),
		MeanMs: ms(h.Mean()),
	}
}

// Registry is a named collection of counters and stage histograms. Lookup
// creates on first use and is mutex-guarded; the returned Counter/Histogram
// record lock-free, so the hot path pays the mutex only once per name.
// All methods are safe on a nil *Registry (metrics disabled).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	stages   map[string]*Histogram
	// order preserves first-registration order so reports list stages in
	// pipeline order (Tables I/II read top to bottom), not alphabetically.
	counterOrder, gaugeOrder, stageOrder []string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		stages:   make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op counter) when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.counterOrder = append(r.counterOrder, name)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil (a
// valid no-op gauge) when the registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.gaugeOrder = append(r.gaugeOrder, name)
	}
	return g
}

// Stage returns the named stage latency histogram, creating it on first
// use. Returns nil (a valid no-op histogram) when the registry is nil.
func (r *Registry) Stage(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.stages[name]
	if h == nil {
		h = &Histogram{}
		r.stages[name] = h
		r.stageOrder = append(r.stageOrder, name)
	}
	return h
}

// StartStage begins timing the named stage and returns a stop function that
// records the elapsed time when called. Usage:
//
//	defer reg.StartStage("reconstruction")()
//
// On a nil registry the returned function is a no-op.
func (r *Registry) StartStage(name string) func() {
	if r == nil {
		return func() {}
	}
	h := r.Stage(name)
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// ObserveStage records a single precomputed stage duration.
func (r *Registry) ObserveStage(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.Stage(name).Observe(d)
}

// snapshotLocked copies the name lists and pointers under the lock.
func (r *Registry) snapshot() (cNames []string, cs []*Counter, sNames []string, ss []*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cNames = append(cNames, r.counterOrder...)
	for _, n := range cNames {
		cs = append(cs, r.counters[n])
	}
	sNames = append(sNames, r.stageOrder...)
	for _, n := range sNames {
		ss = append(ss, r.stages[n])
	}
	return
}

// snapshotGauges copies the gauge names and pointers under the lock.
func (r *Registry) snapshotGauges() (names []string, gs []*Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names = append(names, r.gaugeOrder...)
	for _, n := range names {
		gs = append(gs, r.gauges[n])
	}
	return
}

// WriteText writes a human-readable report: stage timing table (mean /
// p50 / p90 / p99 / max per stage, in registration order) followed by
// counters.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	cNames, cs, sNames, ss := r.snapshot()
	if len(sNames) > 0 {
		fmt.Fprintf(w, "stage timing report\n")
		fmt.Fprintf(w, "  %-22s %8s %10s %10s %10s %10s %10s\n",
			"stage", "count", "mean(ms)", "p50(ms)", "p90(ms)", "p99(ms)", "max(ms)")
		for i, name := range sNames {
			s := ss[i].Snapshot()
			fmt.Fprintf(w, "  %-22s %8d %10.2f %10.2f %10.2f %10.2f %10.2f\n",
				name, s.Count, s.MeanMs, s.P50Ms, s.P90Ms, s.P99Ms, s.MaxMs)
		}
	}
	if gNames, gs := r.snapshotGauges(); len(gNames) > 0 {
		fmt.Fprintf(w, "gauges\n")
		for i, name := range gNames {
			fmt.Fprintf(w, "  %-30s %g\n", name, gs[i].Load())
		}
	}
	if len(cNames) > 0 {
		fmt.Fprintf(w, "counters\n")
		for i, name := range cNames {
			fmt.Fprintf(w, "  %-30s %d\n", name, cs[i].Load())
		}
	}
}

// registrySnapshot is the JSON form of a registry.
type registrySnapshot struct {
	Stages   map[string]HistogramSnapshot `json:"stages"`
	Gauges   map[string]float64           `json:"gauges"`
	Counters map[string]int64             `json:"counters"`
}

// MarshalJSON implements json.Marshaler with deterministic key order
// (encoding/json sorts map keys).
func (r *Registry) MarshalJSON() ([]byte, error) {
	snap := registrySnapshot{
		Stages:   map[string]HistogramSnapshot{},
		Gauges:   map[string]float64{},
		Counters: map[string]int64{},
	}
	if r != nil {
		cNames, cs, sNames, ss := r.snapshot()
		for i, n := range cNames {
			snap.Counters[n] = cs[i].Load()
		}
		for i, n := range sNames {
			snap.Stages[n] = ss[i].Snapshot()
		}
		gNames, gs := r.snapshotGauges()
		for i, n := range gNames {
			snap.Gauges[n] = gs[i].Load()
		}
	}
	return json.Marshal(snap)
}

// WriteJSON writes the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// StageNames returns the registered stage names in registration order.
func (r *Registry) StageNames() []string {
	if r == nil {
		return nil
	}
	_, _, names, _ := r.snapshot()
	return names
}

// CounterNames returns the registered counter names sorted alphabetically
// (counters carry no inherent order in reports that consume them by name).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	names, _, _, _ := r.snapshot()
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

// GaugeNames returns the registered gauge names sorted alphabetically.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	names, _ := r.snapshotGauges()
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
