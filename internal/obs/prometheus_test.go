package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusEmpty(t *testing.T) {
	var sb strings.Builder
	var nilReg *Registry
	nilReg.WritePrometheus(&sb, "")
	if sb.Len() != 0 {
		t.Errorf("nil registry wrote %q", sb.String())
	}
	NewRegistry().WritePrometheus(&sb, "adapt")
	if sb.Len() != 0 {
		t.Errorf("empty registry wrote %q", sb.String())
	}
}

// promLines parses "name{labels} value" / "name value" sample lines,
// skipping comments.
func promLines(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func TestWritePrometheusSortedAndValid(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of alphabetical order, with a name needing
	// sanitization.
	r.Counter("zeta").Add(3)
	r.Counter("alpha-count").Add(1)
	r.Stage("total").Observe(2 * time.Millisecond)
	r.Stage("bkg_nn").Observe(5 * time.Microsecond)
	r.Stage("bkg_nn").Observe(80 * time.Microsecond)

	var sb strings.Builder
	r.WritePrometheus(&sb, "")
	text := sb.String()

	// Two runs produce identical bytes.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2, "")
	if text != sb2.String() {
		t.Error("exposition is not deterministic across calls")
	}

	// Counter families appear sorted, with sanitized names.
	iAlpha := strings.Index(text, "adapt_alpha_count_total")
	iZeta := strings.Index(text, "adapt_zeta_total")
	if iAlpha < 0 || iZeta < 0 || iAlpha > iZeta {
		t.Errorf("counters missing or unsorted:\n%s", text)
	}
	// Stage series appear sorted by stage label.
	iBkg := strings.Index(text, `stage="bkg_nn"`)
	iTot := strings.Index(text, `stage="total"`)
	if iBkg < 0 || iTot < 0 || iBkg > iTot {
		t.Errorf("stages missing or unsorted:\n%s", text)
	}

	samples := promLines(t, text)
	if v := samples["adapt_zeta_total"]; v != 3 {
		t.Errorf("zeta = %v, want 3", v)
	}
	// +Inf bucket must equal count for every stage.
	if inf, cnt := samples[`adapt_stage_duration_seconds_bucket{stage="bkg_nn",le="+Inf"}`],
		samples[`adapt_stage_duration_seconds_count{stage="bkg_nn"}`]; inf != cnt || cnt != 2 {
		t.Errorf("bkg_nn +Inf bucket %v vs count %v, want 2", inf, cnt)
	}
}

func TestPrometheusRoundTripsAgainstJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(7)
	for _, d := range []time.Duration{
		3 * time.Microsecond, 40 * time.Microsecond, 40 * time.Microsecond,
		900 * time.Microsecond, 12 * time.Millisecond, 2 * time.Second,
	} {
		r.Stage("total").Observe(d)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb, "adapt")
	samples := promLines(t, sb.String())

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Stages   map[string]HistogramSnapshot `json:"stages"`
		Counters map[string]int64             `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}

	if got := samples["adapt_runs_total"]; got != float64(snap.Counters["runs"]) {
		t.Errorf("counter mismatch: prom %v, json %d", got, snap.Counters["runs"])
	}
	js := snap.Stages["total"]
	if got := samples[`adapt_stage_duration_seconds_count{stage="total"}`]; got != float64(js.Count) {
		t.Errorf("count mismatch: prom %v, json %d", got, js.Count)
	}
	promSumMs := samples[`adapt_stage_duration_seconds_sum{stage="total"}`] * 1e3
	if math.Abs(promSumMs-js.SumMs) > 1e-9*math.Abs(js.SumMs) {
		t.Errorf("sum mismatch: prom %v ms, json %v ms", promSumMs, js.SumMs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h *Histogram
	if b, c := h.Buckets(); b != nil || c != nil {
		t.Error("nil histogram must have no buckets")
	}
	h = &Histogram{}
	if b, c := h.Buckets(); b != nil || c != nil {
		t.Error("empty histogram must have no buckets")
	}
	h.Observe(time.Microsecond)
	h.Observe(10 * time.Microsecond)
	bounds, cum := h.Buckets()
	if len(bounds) == 0 || len(bounds) != len(cum) {
		t.Fatalf("bounds/cum length mismatch: %d vs %d", len(bounds), len(cum))
	}
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		t.Error("bounds not ascending")
	}
	if cum[len(cum)-1] != h.Count() {
		t.Errorf("last cumulative %d != count %d", cum[len(cum)-1], h.Count())
	}
	if bounds[len(bounds)-1] < 10*time.Microsecond {
		t.Errorf("trimmed past the last occupied bucket: last bound %v", bounds[len(bounds)-1])
	}
}
