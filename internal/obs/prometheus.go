package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Buckets returns the histogram's bucket upper bounds and the cumulative
// sample count at or below each bound, trimmed after the last non-empty
// bucket (the remaining cumulative counts all equal Count). Both slices are
// empty for a histogram with no samples.
func (h *Histogram) Buckets() (bounds []time.Duration, cumulative []int64) {
	if h == nil || h.count.Load() == 0 {
		return nil, nil
	}
	last := 0
	var counts [numBuckets]int64
	for i := 0; i < numBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		bounds = append(bounds, bucketBounds[i])
		cumulative = append(cumulative, cum)
	}
	return bounds, cumulative
}

// promName maps a registry metric name to a valid Prometheus metric-name
// fragment: every character outside [a-zA-Z0-9_] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float in the exposition format (shortest round-trip
// representation; Prometheus accepts Go's 'g' forms).
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4):
//
//   - every counter becomes its own counter family `<ns>_<name>_total`;
//   - every gauge becomes its own gauge family `<ns>_<name>`;
//   - every stage histogram becomes a series of the single histogram family
//     `<ns>_stage_duration_seconds` labeled {stage="<name>"}, with
//     cumulative buckets trimmed after the last occupied bound plus the
//     mandatory +Inf bucket, and `_sum`/`_count` series.
//
// ns is the metric namespace ("adapt" when empty). Unlike WriteText, which
// keeps registration (pipeline) order for human readers, names here are
// sorted so the exposition is deterministic for scrapers and tests. A nil
// or empty registry writes nothing — a valid (empty) exposition.
func (r *Registry) WritePrometheus(w io.Writer, ns string) {
	if r == nil {
		return
	}
	if ns == "" {
		ns = "adapt"
	}
	ns = promName(ns)
	cNames, cs, sNames, ss := r.snapshot()

	cIdx := sortedIndex(cNames)
	for _, i := range cIdx {
		name := fmt.Sprintf("%s_%s_total", ns, promName(cNames[i]))
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, cs[i].Load())
	}

	gNames, gs := r.snapshotGauges()
	for _, i := range sortedIndex(gNames) {
		name := fmt.Sprintf("%s_%s", ns, promName(gNames[i]))
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %s\n", name, promFloat(gs[i].Load()))
	}

	if len(sNames) == 0 {
		return
	}
	fam := ns + "_stage_duration_seconds"
	fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
	for _, i := range sortedIndex(sNames) {
		h := ss[i]
		stage := promName(sNames[i])
		bounds, cum := h.Buckets()
		for j, ub := range bounds {
			fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n",
				fam, stage, promFloat(ub.Seconds()), cum[j])
		}
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", fam, stage, h.Count())
		fmt.Fprintf(w, "%s_sum{stage=%q} %s\n", fam, stage, promFloat(h.Sum().Seconds()))
		fmt.Fprintf(w, "%s_count{stage=%q} %d\n", fam, stage, h.Count())
	}
}

// sortedIndex returns indices into names ordered by name.
func sortedIndex(names []string) []int {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return names[idx[a]] < names[idx[b]] })
	return idx
}
