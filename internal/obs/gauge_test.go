package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestGaugeSetAddLoad(t *testing.T) {
	var g Gauge
	if got := g.Load(); got != 0 {
		t.Fatalf("zero gauge = %g, want 0", got)
	}
	g.Set(3.5)
	if got := g.Load(); got != 3.5 {
		t.Fatalf("after Set(3.5) = %g", got)
	}
	g.Add(-1.25)
	if got := g.Load(); got != 2.25 {
		t.Fatalf("after Add(-1.25) = %g", got)
	}
	g.Set(-7)
	if got := g.Load(); got != -7 {
		t.Fatalf("gauges must go negative: got %g", got)
	}
}

func TestGaugeNil(t *testing.T) {
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if got := g.Load(); got != 0 {
		t.Fatalf("nil gauge = %g, want 0", got)
	}
	var r *Registry
	r.Gauge("x").Set(5)
	if r.Gauge("x").Load() != 0 {
		t.Error("nil registry gauge recorded data")
	}
	if names := r.GaugeNames(); names != nil {
		t.Errorf("nil registry GaugeNames = %v", names)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	// Run under -race in CI: the CAS loop must lose no increments.
	var g Gauge
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != goroutines*perG*0.5 {
		t.Errorf("gauge = %g, want %g", got, float64(goroutines*perG)*0.5)
	}
}

func TestGaugeTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Gauge("ring_occupancy").Set(42)
	r.Gauge("bkg_rate_hz").Set(1234.5)
	var buf bytes.Buffer
	r.WriteText(&buf)
	text := buf.String()
	for _, want := range []string{"gauges", "ring_occupancy", "42", "bkg_rate_hz", "1234.5"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestGaugeJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth").Set(7.5)
	r.Counter("seen").Add(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Gauges   map[string]float64 `json:"gauges"`
		Counters map[string]int64   `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, buf.String())
	}
	if got := snap.Gauges["depth"]; got != 7.5 {
		t.Errorf("JSON depth = %g, want 7.5", got)
	}
	if got := snap.Counters["seen"]; got != 3 {
		t.Errorf("JSON seen = %d, want 3", got)
	}
}

func TestGaugePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Gauge("ring occupancy").Set(9) // name needs sanitizing
	r.Gauge("a_rate").Set(0.25)
	var buf bytes.Buffer
	r.WritePrometheus(&buf, "adapt")
	text := buf.String()
	for _, want := range []string{
		"# TYPE adapt_a_rate gauge\nadapt_a_rate 0.25\n",
		"# TYPE adapt_ring_occupancy gauge\nadapt_ring_occupancy 9\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, text)
		}
	}
	// Gauges are sorted: a_rate precedes ring_occupancy.
	if strings.Index(text, "adapt_a_rate") > strings.Index(text, "adapt_ring_occupancy") {
		t.Errorf("gauge families not sorted:\n%s", text)
	}
	if !strings.Contains(text, "adapt_a_rate 0.25") {
		t.Errorf("gauge value missing:\n%s", text)
	}
}

func TestGaugeNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz")
	r.Gauge("aa")
	if names := r.GaugeNames(); len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Errorf("GaugeNames = %v", names)
	}
	// Same name returns the same gauge.
	r.Gauge("aa").Set(1)
	if r.Gauge("aa").Load() != 1 {
		t.Error("Gauge lookup did not return the same instance")
	}
}
