package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	// Run under -race in CI: concurrent Add must be safe and lose nothing.
	var c Counter
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
}

func TestNilSinksNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Stage("y").Observe(time.Second)
	r.ObserveStage("z", time.Second)
	r.StartStage("w")()
	var buf bytes.Buffer
	r.WriteText(&buf)
	if buf.Len() != 0 {
		t.Errorf("nil registry WriteText produced output: %q", buf.String())
	}
	if r.Counter("x").Load() != 0 || r.Stage("y").Count() != 0 {
		t.Error("nil registry recorded data")
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Errorf("nil registry WriteJSON: %v", err)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	prev := -1
	for d := time.Nanosecond; d < 200*time.Second; d *= 3 {
		i := bucketIndex(d)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %v: %d < %d", d, i, prev)
		}
		if bucketBounds[i] < d && i != numBuckets-1 {
			t.Fatalf("bucketIndex(%v) = %d with bound %v < sample", d, i, bucketBounds[i])
		}
		prev = i
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 samples: 1ms ×90, 100ms ×9, 1s ×1.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(100 * time.Millisecond)
	}
	h.Observe(time.Second)

	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	// Bucket bounds are √2-spaced, so an estimate is correct when it lands
	// within one bucket (factor √2) above the true quantile.
	checks := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, time.Millisecond},
		{0.90, time.Millisecond},
		{0.95, 100 * time.Millisecond},
		{0.99, 100 * time.Millisecond},
		{1.00, time.Second},
	}
	for _, c := range checks {
		got := h.Percentile(c.p)
		lo, hi := c.want, time.Duration(float64(c.want)*math.Sqrt2*1.0001)
		if got < lo || got > hi {
			t.Errorf("P%.0f = %v, want in [%v, %v]", c.p*100, got, lo, hi)
		}
	}
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("Min = %v, want 1ms", got)
	}
	if got := h.Max(); got != time.Second {
		t.Errorf("Max = %v, want 1s", got)
	}
	wantMean := (90*time.Millisecond + 9*100*time.Millisecond + time.Second) / 100
	if got := h.Mean(); got != wantMean {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
}

func TestHistogramSingleSampleClampsToMax(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	// All percentiles of a single sample are the sample itself, not the
	// bucket's upper edge.
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Percentile(p); got != 3*time.Millisecond {
			t.Errorf("P%v = %v, want 3ms", p, got)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// Under -race: concurrent Observe on one histogram, then exact count
	// and sum invariants.
	var h Histogram
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g+1) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*perG)
	}
	var wantSum time.Duration
	for g := 0; g < goroutines; g++ {
		wantSum += time.Duration(g+1) * time.Millisecond * perG
	}
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Min() != time.Millisecond || h.Max() != goroutines*time.Millisecond {
		t.Errorf("min/max = %v/%v, want 1ms/%dms", h.Min(), h.Max(), goroutines)
	}
}

func TestRegistryReport(t *testing.T) {
	r := NewRegistry()
	r.Stage("reconstruction").Observe(2 * time.Millisecond)
	r.Stage("bkg_nn").Observe(5 * time.Millisecond)
	r.ObserveStage("reconstruction", 4*time.Millisecond)
	r.Counter("rings").Add(597)
	r.Counter("runs").Inc()

	// Same name returns the same instrument.
	if r.Stage("reconstruction").Count() != 2 {
		t.Errorf("reconstruction count = %d, want 2", r.Stage("reconstruction").Count())
	}
	// Stage order is registration order, for pipeline-order reports.
	if names := r.StageNames(); len(names) != 2 || names[0] != "reconstruction" || names[1] != "bkg_nn" {
		t.Errorf("StageNames = %v", names)
	}
	if names := r.CounterNames(); len(names) != 2 || names[0] != "rings" || names[1] != "runs" {
		t.Errorf("CounterNames = %v", names)
	}

	var buf bytes.Buffer
	r.WriteText(&buf)
	text := buf.String()
	for _, want := range []string{"reconstruction", "bkg_nn", "rings", "597", "p99(ms)"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Stages   map[string]HistogramSnapshot `json:"stages"`
		Counters map[string]int64             `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, buf.String())
	}
	if snap.Counters["rings"] != 597 {
		t.Errorf("JSON rings = %d, want 597", snap.Counters["rings"])
	}
	if s := snap.Stages["reconstruction"]; s.Count != 2 || s.MeanMs != 3 {
		t.Errorf("JSON reconstruction = %+v, want count 2 mean 3ms", s)
	}
}

func TestStartStage(t *testing.T) {
	r := NewRegistry()
	stop := r.StartStage("s")
	time.Sleep(2 * time.Millisecond)
	stop()
	if got := r.Stage("s").Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := r.Stage("s").Max(); got < time.Millisecond {
		t.Errorf("recorded %v, want >= 1ms", got)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	// Lookup-and-record from many goroutines, same and distinct names.
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.Stage("shared").Observe(time.Duration(i) * time.Microsecond)
				r.Counter(string(rune('a' + g))).Inc()
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8*200 {
		t.Errorf("shared counter = %d, want %d", got, 8*200)
	}
	if got := r.Stage("shared").Count(); got != 8*200 {
		t.Errorf("shared stage count = %d, want %d", got, 8*200)
	}
}
