package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestGetAlwaysPopulated(t *testing.T) {
	info := Get()
	if info.Version == "" {
		t.Error("empty Version")
	}
	if info.GoVersion == "" {
		t.Error("empty GoVersion")
	}
	if !strings.Contains(info.String(), info.GoVersion) {
		t.Errorf("String() = %q missing go version %q", info.String(), info.GoVersion)
	}
}

func TestReadNilBuildInfo(t *testing.T) {
	info := read(nil, false)
	if info.Version != "(devel)" {
		t.Errorf("Version = %q, want (devel)", info.Version)
	}
	if info.Commit != "" {
		t.Errorf("Commit = %q, want empty", info.Commit)
	}
	if info.GoVersion == "" {
		t.Error("GoVersion must fall back to runtime.Version")
	}
}

func TestReadVCSStamp(t *testing.T) {
	bi := &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123456789abcdef01234567"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	info := read(bi, true)
	if want := "0123456789ab-dirty"; info.Commit != want {
		t.Errorf("Commit = %q, want %q", info.Commit, want)
	}
	if info.GoVersion != "go1.22.0" {
		t.Errorf("GoVersion = %q", info.GoVersion)
	}
	if got := info.String(); !strings.Contains(got, "commit 0123456789ab-dirty") {
		t.Errorf("String() = %q", got)
	}
}

func TestLine(t *testing.T) {
	if got := Line("adaptserve"); !strings.HasPrefix(got, "adaptserve ") {
		t.Errorf("Line() = %q", got)
	}
}
