// Package buildinfo reports the build's version, VCS commit, and Go
// toolchain, read from the information the Go linker embeds in every
// binary (runtime/debug.ReadBuildInfo). Every cmd/ binary exposes it
// behind a -version flag, and adaptserve labels its /metrics build-info
// gauge with it, so a deployed binary can always say what it is.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the identity of the running binary.
type Info struct {
	// Version is the main module's version ("(devel)" for a plain
	// `go build` outside a tagged module download).
	Version string `json:"version"`
	// Commit is the VCS revision the binary was built from, suffixed with
	// "-dirty" when the working tree had local modifications; empty when
	// the build carried no VCS stamp (e.g. `go build` of a non-VCS tree).
	Commit string `json:"commit,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// read extracts an Info from debug build info; bi may be nil (no build
// metadata compiled in, e.g. some test binaries).
func read(bi *debug.BuildInfo, ok bool) Info {
	info := Info{Version: "(devel)", GoVersion: runtime.Version()}
	if !ok || bi == nil {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" && dirty {
		rev += "-dirty"
	}
	info.Commit = rev
	return info
}

// Get returns the running binary's build identity.
func Get() Info {
	return read(debug.ReadBuildInfo())
}

// String renders the identity on one line, e.g.
// "(devel) commit 1a2b3c4d5e6f go1.22.0".
func (i Info) String() string {
	if i.Commit == "" {
		return fmt.Sprintf("%s %s", i.Version, i.GoVersion)
	}
	return fmt.Sprintf("%s commit %s %s", i.Version, i.Commit, i.GoVersion)
}

// Line renders "prog version ..." for a binary's -version flag.
func Line(prog string) string {
	return prog + " " + Get().String()
}
