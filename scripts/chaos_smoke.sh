#!/usr/bin/env bash
# Chaos-campaign smoke test, mirrored by the CI chaos-smoke job
# (`make chaos-smoke`): run the built-in multi-fault "flight" scenario
# (lane dropout with journal backfill, SAA passage, orbital modulation,
# lane clock offsets, serve-overload shedding, overlapping bursts) through
# adaptsim -scenario and require the mission scorecard and alert records to
# be byte-identical across two runs and across localization worker counts —
# the determinism contract of the whole sim → merge → stream → score stack,
# end to end through the CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/adaptsim" ./cmd/adaptsim
"$workdir/adaptsim" -version

echo "== scenario library is listable and includes the flight scenario"
"$workdir/adaptsim" -scenario-list >"$workdir/library.json"
grep -q '"name": "flight"' "$workdir/library.json"
grep -q '"dropouts": 1' "$workdir/library.json"

echo "== flight scenario, run 1"
"$workdir/adaptsim" -scenario flight -seed 11 \
    -scorecard "$workdir/sc1.json" -alerts "$workdir/al1.jsonl" \
    -metrics-json "$workdir/metrics1.json" 2>"$workdir/run1.log"
grep -q 'scenario "flight"' "$workdir/run1.log"

echo "== flight scenario, run 2 (same seed)"
"$workdir/adaptsim" -scenario flight -seed 11 \
    -scorecard "$workdir/sc2.json" -alerts "$workdir/al2.jsonl" 2>/dev/null

echo "== flight scenario, run 3 (same seed, -parallelism 4)"
"$workdir/adaptsim" -scenario flight -seed 11 -parallelism 4 \
    -scorecard "$workdir/sc3.json" -alerts "$workdir/al3.jsonl" 2>/dev/null

echo "== scorecards and alert records must match bitwise"
cmp "$workdir/sc1.json" "$workdir/sc2.json" || {
    echo "scorecard differs between identical runs:"
    diff "$workdir/sc1.json" "$workdir/sc2.json" || true
    exit 1
}
cmp "$workdir/sc1.json" "$workdir/sc3.json" || {
    echo "scorecard differs across worker counts:"
    diff "$workdir/sc1.json" "$workdir/sc3.json" || true
    exit 1
}
cmp "$workdir/al1.jsonl" "$workdir/al2.jsonl"
cmp "$workdir/al1.jsonl" "$workdir/al3.jsonl"

echo "== the fault phases must actually have bitten"
# The flight scenario composes a backfilled dropout, an SAA passage, and an
# overload window; a scorecard where none of them left a trace means the
# fault injection silently stopped working.
grep -q '"scenario": "flight"' "$workdir/sc1.json"
grep -q '"within_budget": true' "$workdir/sc1.json"
backfill="$(sed -n 's/.*"backfill_events": \([0-9]*\).*/\1/p' "$workdir/sc1.json" | head -1)"
shed="$(sed -n 's/.*"overload_shed": \([0-9]*\).*/\1/p' "$workdir/sc1.json" | head -1)"
detected="$(sed -n 's/.*"bursts_detected": \([0-9]*\).*/\1/p' "$workdir/sc1.json" | head -1)"
[ "${backfill:-0}" -gt 0 ] || { echo "no backfill events in scorecard"; exit 1; }
[ "${shed:-0}" -gt 0 ] || { echo "no overload shedding in scorecard"; exit 1; }
[ "${detected:-0}" -eq 3 ] || { echo "expected 3 detected bursts, got ${detected:-0}"; exit 1; }
grep -q '"name": "dropout0"' "$workdir/sc1.json"
grep -q '"name": "saa0"' "$workdir/sc1.json"
grep -q '"name": "overload"' "$workdir/sc1.json"
grep -q '"chaos_overload_shed": ' "$workdir/metrics1.json"

echo "== a user-written JSON spec parses and runs"
cat >"$workdir/custom.json" <<'EOF'
{
  "name": "smoke-custom",
  "duration_sec": 2,
  "lanes": 2,
  "background": {"rate_hz": 4000},
  "bursts": [{"time_sec": 1.0, "fluence": 4, "polar_deg": 25}],
  "dropouts": [{"lane": 1, "start_sec": 0.6, "end_sec": 1.4, "backfill": true}],
  "false_alert_budget": 1
}
EOF
"$workdir/adaptsim" -scenario "$workdir/custom.json" -seed 4 \
    -scorecard "$workdir/custom-sc.json" 2>/dev/null
grep -q '"scenario": "smoke-custom"' "$workdir/custom-sc.json"
grep -q '"bursts_detected": 1' "$workdir/custom-sc.json"

echo "== a malformed spec is rejected"
if "$workdir/adaptsim" -scenario /dev/null 2>/dev/null; then
    echo "empty spec was accepted"; exit 1
fi

echo "chaos smoke: OK (flight scorecard reproduced bitwise across runs and worker counts)"
