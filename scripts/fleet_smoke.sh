#!/usr/bin/env bash
# Fleet smoke test, mirrored by the CI fleet-smoke job (`make fleet-smoke`):
# boot three shared-nothing adaptserve replicas behind adaptrouter, then
# assert the router's core contracts end to end:
#   - a routed localization is bitwise-identical to a direct replica call
#     (?canonical=1 zeroes the only nondeterministic fields);
#   - an identical repeat is a cache hit (X-Adapt-Router-Cache: hit) with
#     byte-identical body;
#   - kill -9 one replica mid-load and require ZERO failed requests — the
#     router retries transport errors on survivors and ejects the corpse;
#   - /metrics exposes the cache hit ratio, retry, and ejection counters;
#   - SIGTERM drains the router cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/adaptserve" ./cmd/adaptserve
go build -o "$workdir/adaptrouter" ./cmd/adaptrouter
go build -o "$workdir/adaptsim" ./cmd/adaptsim
"$workdir/adaptrouter" -version

echo "== generate a request payload"
"$workdir/adaptsim" -fluence 1.0 -polar 30 -seed 7 -binary "$workdir/events.evio" >/dev/null

# wait_addr LOGFILE PID PREFIX -> echoes the listen address
wait_addr() {
    local logf=$1 pid=$2 prefix=$3 addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n "s/^$prefix: listening on \([^,]*\).*$/\1/p" "$logf" | head -1)"
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$pid" 2>/dev/null || { echo "$prefix died:" >&2; cat "$logf" >&2; return 1; }
        sleep 0.1
    done
    echo "$prefix never reported its address" >&2
    cat "$logf" >&2
    return 1
}

echo "== start 3 replicas"
replica_urls=()
replica_pids=()
for i in 1 2 3; do
    "$workdir/adaptserve" -addr 127.0.0.1:0 >"$workdir/replica$i.log" 2>&1 &
    pid=$!
    disown "$pid" # suppress job-control noise when the test kill -9s it
    pids+=("$pid")
    replica_pids+=("$pid")
    addr="$(wait_addr "$workdir/replica$i.log" "$pid" adaptserve)"
    replica_urls+=("http://$addr")
    echo "   replica $i at http://$addr"
done

echo "== start the router"
replicas_csv="$(IFS=,; echo "${replica_urls[*]}")"
"$workdir/adaptrouter" -addr 127.0.0.1:0 -replicas "$replicas_csv" \
    -probe-interval 200ms -fail-threshold 2 -retry-budget 3 \
    >"$workdir/router.log" 2>&1 &
router_pid=$!
pids+=("$router_pid")
router="http://$(wait_addr "$workdir/router.log" "$router_pid" adaptrouter)"
echo "   router at $router"

echo "== router health and fleet view"
curl -fsS "$router/healthz" | grep -q ok
curl -fsS "$router/readyz" | grep -q '"healthy_replicas":3'
curl -fsS "$router/fleet" | grep -q '"healthy":true'

echo "== routed response is bitwise-identical to a direct replica call"
q="/v1/localize?seed=7&canonical=1"
curl -fsS -X POST -H 'Content-Type: application/x-adapt-evio' \
    --data-binary @"$workdir/events.evio" "${replica_urls[0]}$q" >"$workdir/direct.json"
curl -fsS -D "$workdir/routed.hdr" -X POST -H 'Content-Type: application/x-adapt-evio' \
    --data-binary @"$workdir/events.evio" "$router$q" >"$workdir/routed.json"
cmp "$workdir/direct.json" "$workdir/routed.json" \
    || { echo "routed body differs from direct"; exit 1; }
grep -qi '^x-adapt-router-cache: miss' "$workdir/routed.hdr" \
    || { echo "first routed request was not a cache miss:"; cat "$workdir/routed.hdr"; exit 1; }

echo "== identical repeat is a cache hit with identical bytes"
curl -fsS -D "$workdir/hit.hdr" -X POST -H 'Content-Type: application/x-adapt-evio' \
    --data-binary @"$workdir/events.evio" "$router$q" >"$workdir/hit.json"
grep -qi '^x-adapt-router-cache: hit' "$workdir/hit.hdr" \
    || { echo "repeat was not a cache hit:"; cat "$workdir/hit.hdr"; exit 1; }
cmp "$workdir/routed.json" "$workdir/hit.json" \
    || { echo "cache hit not bitwise-identical to miss"; exit 1; }

echo "== kill one replica mid-load: zero failed requests"
# Distinct seeds defeat the cache so every request exercises routing; the
# retry budget absorbs the connection errors while the dead replica's
# failure streak ejects it.
(
    i=0
    end=$((SECONDS + 6))
    while [ $SECONDS -lt $end ]; do
        i=$((i + 1))
        curl -fsS -o /dev/null -X POST -H 'Content-Type: application/x-adapt-evio' \
            --data-binary @"$workdir/events.evio" \
            "$router/v1/localize?seed=$i&canonical=1" || echo "request $i FAILED" >>"$workdir/failures.log"
    done
    echo "$i" >"$workdir/requests.count"
) &
load_pid=$!
sleep 2
echo "   killing replica 2 (pid ${replica_pids[1]})"
kill -9 "${replica_pids[1]}"
wait "$load_pid"
count="$(cat "$workdir/requests.count")"
echo "   $count requests while a replica died"
[ "$count" -ge 10 ] || { echo "load loop sent too few requests ($count)"; exit 1; }
if [ -s "$workdir/failures.log" ]; then
    echo "requests failed during replica death:"
    cat "$workdir/failures.log"
    exit 1
fi
curl -fsS "$router/readyz" | grep -q '"healthy_replicas":2' \
    || { echo "dead replica not ejected"; curl -fsS "$router/readyz"; exit 1; }

echo "== router metrics exposition"
metrics="$(curl -fsS "$router/metrics")"
echo "$metrics" | grep -q '^adapt_build_info'
echo "$metrics" | grep -q '^adapt_router_cache_hit_ratio'
echo "$metrics" | grep -q '^adapt_router_cache_hits_total'
echo "$metrics" | grep -q '^adapt_router_retries_total'
echo "$metrics" | grep -Eq '^adapt_router_ejections_total [1-9]' \
    || { echo "no ejection recorded in metrics"; exit 1; }

echo "== graceful drain on SIGTERM"
kill -TERM "$router_pid"
rc=0
wait "$router_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "router exited $rc:"; cat "$workdir/router.log"; exit 1; }
grep -q "drained cleanly" "$workdir/router.log" \
    || { echo "no clean-drain log line:"; cat "$workdir/router.log"; exit 1; }

echo "fleet smoke: OK"
