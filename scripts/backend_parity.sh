#!/usr/bin/env bash
# Backend-parity gate, mirrored by the CI backend-parity job
# (`make backend-parity`): train one small quantized bundle, run the same
# golden streaming scenario through every inference backend, and require
#
#   1. exact trigger identity everywhere — the trigger is a Poisson
#      count-rate test that never consults the NN, so seq, trigger_s,
#      significance, background_rate_hz, n_events, and ok must be equal
#      byte for byte across backends;
#   2. bitwise-identical alert records between int8 and fpga-sim (the
#      fpga kernel wraps the same integer arithmetic in a cycle model);
#   3. bitwise-identical int8 alerts at different worker counts (integer
#      inference is exact, so sharding cannot change results);
#   4. float32 → int8 localization drift bounded by DRIFT_TOL_DEG (the
#      documented quantization-error budget; see DESIGN.md "Inference
#      backends").
set -euo pipefail
cd "$(dirname "$0")/.."

# Documented tolerance: INT8 quantization may move individual ring
# probabilities across the background threshold, which can perturb the
# localization fit. On the golden bright-burst scenario the observed drift
# is ~0°; 2° keeps the gate tight while allowing threshold-crossing noise.
DRIFT_TOL_DEG="${DRIFT_TOL_DEG:-2.0}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/" ./cmd/adapttrain ./cmd/adaptstream ./cmd/adaptloc

echo "== train a small PTQ-quantized bundle"
"$workdir/adapttrain" -bursts 1 -epochs 3 -quantize -quant-mode ptq -q \
    -o "$workdir/models.gob" 2>"$workdir/train.log" ||
    { cat "$workdir/train.log"; exit 1; }
grep -q 'quantized background net' "$workdir/train.log"

echo "== golden scenario through each backend"
for b in float32 int8 fpga-sim; do
    "$workdir/adaptstream" -seed 7 -exposure 3 -burst-at 1.2 -fluence 2 \
        -model "$workdir/models.gob" -backend "$b" \
        -alerts "$workdir/$b.jsonl" 2>"$workdir/$b.log"
    [ -s "$workdir/$b.jsonl" ] ||
        { echo "backend $b emitted no alerts"; cat "$workdir/$b.log"; exit 1; }
done

echo "== trigger decisions must match float32 exactly"
trigger='{seq, trigger_s, significance, background_rate_hz, n_events, ok}'
jq -c "$trigger" "$workdir/float32.jsonl" >"$workdir/trigger-ref.jsonl"
for b in int8 fpga-sim; do
    jq -c "$trigger" "$workdir/$b.jsonl" >"$workdir/trigger-$b.jsonl"
    cmp "$workdir/trigger-ref.jsonl" "$workdir/trigger-$b.jsonl" || {
        echo "backend $b changed a trigger decision:"
        diff "$workdir/trigger-ref.jsonl" "$workdir/trigger-$b.jsonl" || true
        exit 1
    }
done

echo "== int8 and fpga-sim must agree bitwise"
cmp "$workdir/int8.jsonl" "$workdir/fpga-sim.jsonl" || {
    echo "integer backends diverged:"
    diff "$workdir/int8.jsonl" "$workdir/fpga-sim.jsonl" || true
    exit 1
}

echo "== int8 must be bitwise-deterministic across worker counts"
for p in 1 4; do
    "$workdir/adaptstream" -seed 7 -exposure 3 -burst-at 1.2 -fluence 2 \
        -model "$workdir/models.gob" -backend int8 -parallelism "$p" \
        -alerts "$workdir/int8-p$p.jsonl" 2>/dev/null
done
cmp "$workdir/int8-p1.jsonl" "$workdir/int8-p4.jsonl" || {
    echo "int8 alerts depend on worker count:"
    diff "$workdir/int8-p1.jsonl" "$workdir/int8-p4.jsonl" || true
    exit 1
}

echo "== float32 -> int8 localization drift bounded ($DRIFT_TOL_DEG deg)"
python3 - "$workdir/float32.jsonl" "$workdir/int8.jsonl" "$DRIFT_TOL_DEG" <<'EOF'
import json, math, sys
ref, alt, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(ref) as f, open(alt) as g:
    pairs = list(zip([json.loads(l) for l in f], [json.loads(l) for l in g]))
assert pairs, "no alerts to compare"
for i, (a, b) in enumerate(pairs):
    assert a["ok"] == b["ok"], f"alert {i}: ok flag differs"
    if not a["ok"]:
        continue
    dot = max(-1.0, min(1.0, sum(x * y for x, y in zip(a["dir"], b["dir"]))))
    drift = math.degrees(math.acos(dot))
    print(f"alert {i}: drift {drift:.4f} deg")
    assert drift <= tol, f"alert {i}: drift {drift:.3f} deg exceeds {tol}"
EOF

echo "== adaptloc runs on every backend"
for b in float32 int8 fpga-sim; do
    "$workdir/adaptloc" -models "$workdir/models.gob" -backend "$b" \
        -fluence 2 -polar 30 >"$workdir/loc-$b.out"
    grep -q 'inferred direction' "$workdir/loc-$b.out"
done

echo "backend parity: OK ($(wc -l <"$workdir/float32.jsonl") alert(s), drift tolerance $DRIFT_TOL_DEG deg)"
