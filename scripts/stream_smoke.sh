#!/usr/bin/env bash
# Streaming record→crash→replay smoke test, mirrored by the CI stream-smoke
# job (`make stream-smoke`): run adaptstream live with a flight journal,
# simulate a crash mid-append by tearing the journal tail, replay the
# recovered journal twice, and require the alert records to match the live
# run byte for byte — the durability and determinism contract of
# internal/flightlog + internal/stream, end to end through the CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/adaptstream" ./cmd/adaptstream
"$workdir/adaptstream" -version

echo "== live run, recording a flight journal"
"$workdir/adaptstream" -seed 7 -exposure 3 -burst-at 1.2 -fluence 2 \
    -journal "$workdir/fl" -alerts "$workdir/live.jsonl" \
    -metrics-json "$workdir/live-metrics.json" 2>"$workdir/live.log"
grep -q 'alert(s) out' "$workdir/live.log"
[ -s "$workdir/live.jsonl" ] || { echo "live run emitted no alerts"; cat "$workdir/live.log"; exit 1; }
grep -q '"stream_triggers": ' "$workdir/live-metrics.json"

echo "== crash: tear the journal tail mid-record"
lastseg="$(ls "$workdir"/fl/journal-*.flog | sort | tail -1)"
printf '\x42\x00\x00\x00\xDE\xAD' >>"$lastseg"

echo "== replay the recovered journal, twice"
"$workdir/adaptstream" -seed 7 -replay "$workdir/fl" \
    -alerts "$workdir/replay1.jsonl" 2>"$workdir/replay1.log"
"$workdir/adaptstream" -seed 7 -replay "$workdir/fl" \
    -alerts "$workdir/replay2.jsonl" 2>"$workdir/replay2.log"

echo "== alert records must match bitwise"
cmp "$workdir/live.jsonl" "$workdir/replay1.jsonl" || {
    echo "replay diverged from the live run:"
    diff "$workdir/live.jsonl" "$workdir/replay1.jsonl" || true
    exit 1
}
cmp "$workdir/replay1.jsonl" "$workdir/replay2.jsonl" || {
    echo "replay is not deterministic:"
    diff "$workdir/replay1.jsonl" "$workdir/replay2.jsonl" || true
    exit 1
}

echo "stream smoke: OK ($(wc -l <"$workdir/live.jsonl") alert(s) reproduced bitwise)"
