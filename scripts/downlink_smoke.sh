#!/usr/bin/env bash
# Telemetry-downlink smoke test, mirrored by the CI downlink-smoke job
# (`make downlink-smoke`): record a flight journal with adaptstream while
# pushing the session's alerts and journal backfill through an emulated 10%
# lossy downlink, then require (1) the ground journal to be byte-identical
# to the onboard one, (2) the ground alert stream to match the live one,
# (3) the ARQ layer to have actually retransmitted, and (4) the adaptlink
# transmit→receive and emulate paths to reproduce the same journal — the
# loss-is-invisible contract of internal/downlink, end to end through the
# CLIs.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/adaptstream" ./cmd/adaptstream
go build -o "$workdir/adaptlink" ./cmd/adaptlink
"$workdir/adaptlink" -version

echo "== record a session and downlink it live over a 10% lossy link"
"$workdir/adaptstream" -exposure 2 -burst-at 1.0 -seed 5 \
    -journal "$workdir/fl" -alerts "$workdir/alerts.jsonl" \
    -downlink "$workdir/gnd" -downlink-budget 65536 \
    -downlink-loss 0.10 -downlink-seed 7 2>"$workdir/run.log"
grep -q 'downlink:' "$workdir/run.log"

echo "== ground journal must be byte-identical to the onboard journal"
cat "$workdir"/fl/journal-*.flog >"$workdir/onboard.bin"
cat "$workdir"/gnd/journal/journal-*.flog >"$workdir/ground.bin"
cmp "$workdir/onboard.bin" "$workdir/ground.bin"

echo "== ground alert stream must match the live one"
cmp "$workdir/alerts.jsonl" "$workdir/gnd/alerts.jsonl"

echo "== the lossy link must have actually cost retransmissions"
retrans="$(sed -n 's/.*"retransmits": \([0-9]*\).*/\1/p' "$workdir/gnd/downlink_stats.json" | head -1)"
dropped="$(sed -n 's/.*"frames_dropped": \([0-9]*\).*/\1/p' "$workdir/gnd/downlink_stats.json" | head -1)"
[ "${retrans:-0}" -gt 0 ] || { echo "no retransmits on a 10% lossy link"; exit 1; }
[ "${dropped:-0}" -gt 0 ] || { echo "no frames dropped on a 10% lossy link"; exit 1; }

echo "== the emulated downlink must be deterministic for a fixed seed"
"$workdir/adaptstream" -exposure 2 -burst-at 1.0 -seed 5 \
    -journal "$workdir/fl2" -alerts /dev/null \
    -downlink "$workdir/gnd2" -downlink-budget 65536 \
    -downlink-loss 0.10 -downlink-seed 7 2>/dev/null
cmp "$workdir/gnd/downlink_stats.json" "$workdir/gnd2/downlink_stats.json"

echo "== adaptlink transmit -> receive round-trips the journal open loop"
"$workdir/adaptlink" -mode transmit -journal "$workdir/fl" \
    -frames "$workdir/pass.bin" 2>"$workdir/tx.log"
grep -q 'frames' "$workdir/tx.log"
"$workdir/adaptlink" -mode receive -frames "$workdir/pass.bin" \
    -ground "$workdir/gnd-rx" 2>/dev/null
cat "$workdir"/gnd-rx/journal/journal-*.flog >"$workdir/rx.bin"
cmp "$workdir/onboard.bin" "$workdir/rx.bin"

echo "== adaptlink emulate recovers through drops, reordering, and an outage"
"$workdir/adaptlink" -mode emulate -journal "$workdir/fl" \
    -ground "$workdir/gnd-em" -budget 65536 \
    -drop 0.10 -reorder 0.2 -outage 10-12 -seed 3 2>"$workdir/em.log"
grep -q 'retransmits' "$workdir/em.log"
cat "$workdir"/gnd-em/journal/journal-*.flog >"$workdir/em.bin"
cmp "$workdir/onboard.bin" "$workdir/em.bin"
outlost="$(sed -n 's/.*"outage_lost": \([0-9]*\).*/\1/p' "$workdir/gnd-em/downlink_stats.json" | head -1)"
[ "${outlost:-0}" -gt 0 ] || { echo "outage window lost no frames"; exit 1; }

echo "downlink smoke: OK (journal and alerts reproduced bitwise through a 10% lossy link)"
