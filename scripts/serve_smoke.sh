#!/usr/bin/env bash
# Service smoke test, mirrored by the CI serve-smoke job (`make serve-smoke`):
# build adaptserve, boot it on a random port, check /healthz and /readyz,
# POST one evio localization request, scrape /metrics, then SIGTERM and
# assert a clean drain (exit 0, "drained cleanly" in the log).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/adaptserve" ./cmd/adaptserve
go build -o "$workdir/adaptsim" ./cmd/adaptsim
"$workdir/adaptserve" -version

echo "== generate a request payload"
"$workdir/adaptsim" -fluence 1.0 -polar 30 -seed 7 -binary "$workdir/events.evio" >/dev/null

echo "== start adaptserve on a random port"
"$workdir/adaptserve" -addr 127.0.0.1:0 >"$workdir/serve.log" 2>&1 &
srv_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^adaptserve: listening on \(.*\)$/\1/p' "$workdir/serve.log" | head -1)"
    [ -n "$addr" ] && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "server died:"; cat "$workdir/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address"; cat "$workdir/serve.log"; exit 1; }
base="http://$addr"
echo "   listening at $base"

echo "== health and readiness"
curl -fsS "$base/healthz" | grep -q ok
curl -fsS "$base/readyz" | grep -q ready

echo "== one localization request"
resp="$(curl -fsS -X POST -H 'Content-Type: application/x-adapt-evio' \
    --data-binary @"$workdir/events.evio" "$base/v1/localize?seed=7")"
echo "   $resp"
echo "$resp" | grep -q '"ok":true'
echo "$resp" | grep -q '"timing_ms"'

echo "== metrics exposition"
metrics="$(curl -fsS "$base/metrics")"
echo "$metrics" | grep -q '^adapt_build_info'
echo "$metrics" | grep -q 'adapt_serve_localize_ok_total 1'
echo "$metrics" | grep -q 'adapt_stage_duration_seconds_count{stage="serve_localize"} 1'

echo "== graceful drain on SIGTERM"
kill -TERM "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "server exited $rc:"; cat "$workdir/serve.log"; exit 1; }
grep -q "drained cleanly" "$workdir/serve.log" || { echo "no clean-drain log line:"; cat "$workdir/serve.log"; exit 1; }

echo "serve smoke: OK"
