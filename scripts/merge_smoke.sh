#!/usr/bin/env bash
# Multi-detector merge smoke test, mirrored by the CI merge-smoke job
# (`make merge-smoke`): record a single-source flight with adaptstream,
# split its journal three ways with injected clock skew, merge the skewed
# slices back with adaptmerge, and require the merged run's alert records
# to match the single-source run byte for byte. The fused canonical
# journal must then replay to the same alerts through adaptstream — the
# end-to-end determinism contract of internal/merge, through the CLIs.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/adaptstream" ./cmd/adaptstream
go build -o "$workdir/adaptmerge" ./cmd/adaptmerge
"$workdir/adaptmerge" -version

echo "== single-source reference run, recording a flight journal"
"$workdir/adaptstream" -seed 7 -exposure 3 -burst-at 1.2 -fluence 2 \
    -journal "$workdir/fl" -alerts "$workdir/live.jsonl" 2>"$workdir/live.log"
[ -s "$workdir/live.jsonl" ] || { echo "reference run emitted no alerts"; cat "$workdir/live.log"; exit 1; }

echo "== split the journal 3 ways with injected clock skew"
skews="0.001953125,0,-0.0009765625"
"$workdir/adaptmerge" -split 3 -skew "$skews" -split-seed 42 \
    -src "journal:$workdir/fl" -out "$workdir/parts" 2>"$workdir/split.log"
grep -q 'split .* record(s) into 3 journal(s)' "$workdir/split.log"

echo "== merge the skewed slices back into one trigger run"
"$workdir/adaptmerge" -seed 7 \
    -src "journal:$workdir/parts/part0@0.001953125" \
    -src "journal:$workdir/parts/part1" \
    -src "journal:$workdir/parts/part2@-0.0009765625" \
    -journal "$workdir/fused" -alerts "$workdir/merged.jsonl" \
    -metrics-json "$workdir/merge-metrics.json" 2>"$workdir/merge.log"

echo "== merged alerts must match the single-source run bitwise"
cmp "$workdir/live.jsonl" "$workdir/merged.jsonl" || {
    echo "merged run diverged from the single-source run:"
    diff "$workdir/live.jsonl" "$workdir/merged.jsonl" || true
    exit 1
}

echo "== per-source merge metrics must be published"
grep -q '"merge_events_out": ' "$workdir/merge-metrics.json"
grep -q '"merge_src_s0_events": ' "$workdir/merge-metrics.json"
grep -q '"merge_src_s2_skew_s": ' "$workdir/merge-metrics.json"
grep -q 'source s0: .* skew est' "$workdir/merge.log"

echo "== the fused canonical journal must replay to the same alerts"
"$workdir/adaptstream" -seed 7 -replay "$workdir/fused" \
    -alerts "$workdir/replayed.jsonl" 2>"$workdir/replay.log"
cmp "$workdir/live.jsonl" "$workdir/replayed.jsonl" || {
    echo "fused-journal replay diverged:"
    diff "$workdir/live.jsonl" "$workdir/replayed.jsonl" || true
    exit 1
}

echo "merge smoke: OK ($(wc -l <"$workdir/live.jsonl") alert(s) reproduced bitwise from 3 skewed sources)"
