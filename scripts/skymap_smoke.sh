#!/usr/bin/env bash
# Sky-map smoke test, mirrored by the CI skymap-smoke job
# (`make skymap-smoke`): the downlink-map determinism contract end to end
# through the CLIs.
#   - adaptstream with -skymap records a flight journal and attaches a
#     quantized map payload (skymap_b64) to every alert; replaying the
#     journal must reproduce the alert records — payloads included — byte
#     for byte, at different worker counts;
#   - adaptmap decodes every payload and its decode→encode round trip must
#     be byte-identical (non-zero exit otherwise);
#   - a /v1/skymap response routed through adaptrouter is bitwise-identical
#     to a direct replica call, and an identical repeat is a cache hit with
#     identical bytes — the exact-result-cache contract extended to maps.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/adaptstream" ./cmd/adaptstream
go build -o "$workdir/adaptmap" ./cmd/adaptmap
go build -o "$workdir/adaptserve" ./cmd/adaptserve
go build -o "$workdir/adaptrouter" ./cmd/adaptrouter
go build -o "$workdir/adaptsim" ./cmd/adaptsim
"$workdir/adaptmap" -version

echo "== live stream run with downlink maps, recording a journal"
"$workdir/adaptstream" -seed 7 -exposure 3 -burst-at 1.2 -fluence 2 -skymap \
    -journal "$workdir/fl" -alerts "$workdir/live.jsonl" 2>"$workdir/live.log"
[ -s "$workdir/live.jsonl" ] || { echo "live run emitted no alerts"; cat "$workdir/live.log"; exit 1; }
grep -q '"skymap_b64":"' "$workdir/live.jsonl" \
    || { echo "alert records carry no sky-map payload"; exit 1; }

echo "== journal replay reproduces the map payloads bitwise (workers 1 and 4)"
"$workdir/adaptstream" -seed 7 -replay "$workdir/fl" -skymap -parallelism 1 \
    -alerts "$workdir/replay1.jsonl" 2>"$workdir/replay1.log"
"$workdir/adaptstream" -seed 7 -replay "$workdir/fl" -skymap -parallelism 4 \
    -alerts "$workdir/replay4.jsonl" 2>"$workdir/replay4.log"
cmp "$workdir/live.jsonl" "$workdir/replay1.jsonl" || {
    echo "serial replay diverged from the live run:"
    diff "$workdir/live.jsonl" "$workdir/replay1.jsonl" || true
    exit 1
}
cmp "$workdir/live.jsonl" "$workdir/replay4.jsonl" || {
    echo "4-worker replay diverged from the live run:"
    diff "$workdir/live.jsonl" "$workdir/replay4.jsonl" || true
    exit 1
}

echo "== adaptmap decodes every alert payload; round trips must be exact"
"$workdir/adaptmap" -alerts "$workdir/live.jsonl" -render=false >"$workdir/decode.txt"
grep -q 'round-trip:  OK' "$workdir/decode.txt" \
    || { echo "no round-trip confirmation:"; cat "$workdir/decode.txt"; exit 1; }

# wait_addr LOGFILE PID PREFIX -> echoes the listen address
wait_addr() {
    local logf=$1 pid=$2 prefix=$3 addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n "s/^$prefix: listening on \([^,]*\).*$/\1/p" "$logf" | head -1)"
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$pid" 2>/dev/null || { echo "$prefix died:" >&2; cat "$logf" >&2; return 1; }
        sleep 0.1
    done
    echo "$prefix never reported its address" >&2
    cat "$logf" >&2
    return 1
}

echo "== serve: /v1/skymap routed vs direct, and cache-hit identity"
"$workdir/adaptsim" -fluence 1.0 -polar 30 -seed 7 -binary "$workdir/events.evio" >/dev/null
"$workdir/adaptserve" -addr 127.0.0.1:0 >"$workdir/replica.log" 2>&1 &
replica_pid=$!
disown "$replica_pid" # suppress job-control noise from cleanup's kill -9
pids+=("$replica_pid")
replica="http://$(wait_addr "$workdir/replica.log" "$replica_pid" adaptserve)"
"$workdir/adaptrouter" -addr 127.0.0.1:0 -replicas "$replica" >"$workdir/router.log" 2>&1 &
router_pid=$!
disown "$router_pid"
pids+=("$router_pid")
router="http://$(wait_addr "$workdir/router.log" "$router_pid" adaptrouter)"

q="/v1/skymap?seed=7&canonical=1"
curl -fsS -X POST -H 'Content-Type: application/x-adapt-evio' \
    --data-binary @"$workdir/events.evio" "$replica$q" >"$workdir/direct.json"
curl -fsS -D "$workdir/routed.hdr" -X POST -H 'Content-Type: application/x-adapt-evio' \
    --data-binary @"$workdir/events.evio" "$router$q" >"$workdir/routed.json"
cmp "$workdir/direct.json" "$workdir/routed.json" \
    || { echo "routed /v1/skymap differs from direct"; exit 1; }
grep -qi '^x-adapt-router-cache: miss' "$workdir/routed.hdr" \
    || { echo "first routed request was not a cache miss:"; cat "$workdir/routed.hdr"; exit 1; }
curl -fsS -D "$workdir/hit.hdr" -X POST -H 'Content-Type: application/x-adapt-evio' \
    --data-binary @"$workdir/events.evio" "$router$q" >"$workdir/hit.json"
grep -qi '^x-adapt-router-cache: hit' "$workdir/hit.hdr" \
    || { echo "repeat was not a cache hit:"; cat "$workdir/hit.hdr"; exit 1; }
cmp "$workdir/routed.json" "$workdir/hit.json" \
    || { echo "cache hit not bitwise-identical to miss"; exit 1; }

echo "== the served payload decodes and round-trips"
b64="$(sed -n 's/.*"skymap_b64":"\([^"]*\)".*/\1/p' "$workdir/routed.json")"
[ -n "$b64" ] || { echo "no skymap_b64 in the /v1/skymap response"; cat "$workdir/routed.json"; exit 1; }
"$workdir/adaptmap" -b64 "$b64" -render=false >"$workdir/served.txt"
grep -q 'round-trip:  OK' "$workdir/served.txt" \
    || { echo "served payload failed the round trip:"; cat "$workdir/served.txt"; exit 1; }

echo "skymap smoke: OK ($(wc -l <"$workdir/live.jsonl") alert map(s) reproduced bitwise)"
