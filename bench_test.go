// Package repro's root benchmarks regenerate every table and figure of the
// paper (DESIGN.md §4) under `go test -bench=.`. Each benchmark iteration
// runs the full experiment at the benchmark scale.
//
// Scale: benchmarks honor ADAPT_SCALE (ci | default | full) and fall back
// to "ci" when unset, so a plain `go test -bench=. -benchmem` finishes in
// minutes. Paper-quality curves come from `adaptbench -scale full` (or
// default), which shares the same experiment drivers and model caches.
package repro

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/downlink"
	"repro/internal/evio"
	"repro/internal/expt"
	"repro/internal/flightlog"
	"repro/internal/localize"
	"repro/internal/pipeline"
	"repro/internal/recon"
	"repro/internal/skymap"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// benchScale resolves the benchmark workload size.
func benchScale() expt.Scale {
	if s, ok := expt.ScaleByName(os.Getenv("ADAPT_SCALE")); ok {
		return s
	}
	s, _ := expt.ScaleByName("ci")
	return s
}

// benchScene builds the standard benchmark scene: one 1 MeV/cm² normally
// incident burst plus a 1-second background window, reconstructed into
// Compton rings (the paper's Tables I/II workload).
func benchScene() ([]*detector.Event, []*recon.Ring) {
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rng := xrand.New(0xBE7C)
	burst := detector.Burst{Fluence: 1.0, PolarDeg: 0, AzimuthDeg: 45}
	events := detector.SimulateBurst(&det, burst, rng)
	events = append(events, bg.Simulate(&det, 1.0, rng)...)
	rcfg := recon.DefaultConfig()
	var rings []*recon.Ring
	for _, ev := range events {
		if r, ok := recon.Reconstruct(&rcfg, ev); ok {
			rings = append(rings, r)
		}
	}
	return events, rings
}

// BenchmarkLocalizeStage measures the localization hot path (approximation
// grid search + seed refinement) on the standard benchmark scene at several
// worker counts. With ≥4 cores the parallel grid search should beat
// workers=1 by ≥1.5×; results are bitwise-identical at every worker count
// (see localize.TestParallelBitwiseIdentical).
func BenchmarkLocalizeStage(b *testing.B) {
	_, rings := benchScene()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := localize.DefaultConfig()
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				localize.Localize(&cfg, rings, xrand.New(9))
			}
		})
	}
}

// BenchmarkPipelineRunWorkers measures the full no-ML pipeline
// (reconstruction + localization) over the benchmark scene's raw events at
// several worker counts.
func BenchmarkPipelineRunWorkers(b *testing.B) {
	events, _ := benchScene()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := pipeline.DefaultOptions()
			opts.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pipeline.Run(opts, events, xrand.New(9))
			}
		})
	}
}

// BenchmarkJournalAppend measures flight-journal append throughput under
// each durability policy with a representative payload (one evio-encoded
// event, ~80 bytes). SyncAlways pays one fsync per record and is orders of
// magnitude slower — the price of per-record durability.
func BenchmarkJournalAppend(b *testing.B) {
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	events := bg.Simulate(&det, 0.01, xrand.New(3))
	if len(events) == 0 {
		b.Fatal("no benchmark events")
	}
	payload, err := evio.Marshal(events[:1])
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []flightlog.SyncPolicy{flightlog.SyncNone, flightlog.SyncInterval, flightlog.SyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			j, err := flightlog.Open(flightlog.Options{Dir: b.TempDir(), Sync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamTrigger measures the streaming trigger's per-event cost on
// a quiet stream (the steady-state flight workload: rate estimation, ring
// maintenance, and the sliding-window test, with no burst firing).
func BenchmarkStreamTrigger(b *testing.B) {
	cfg := stream.DefaultConfig(1000)
	events := make([]*detector.Event, 10000)
	for i := range events {
		events[i] = &detector.Event{ArrivalTime: float64(i) / 1000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var p *stream.Processor
	for i := 0; i < b.N; i++ {
		if n == 0 {
			p = stream.New(cfg)
		}
		p.Ingest(events[n])
		n++
		if n == len(events) {
			p.Close()
			for range p.Alerts() {
			}
			n = 0
		}
	}
	if n != 0 {
		p.Close()
		for range p.Alerts() {
		}
	}
}

// BenchmarkFig4 regenerates the motivation study: no-ML pipeline accuracy
// with background+dη errors vs the two oracle arms (paper Fig. 4).
func BenchmarkFig4(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		expt.Fig4(io.Discard, sc)
	}
}

// BenchmarkFig7 regenerates the polar-angle-input ablation (paper Fig. 7).
func BenchmarkFig7(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc) // exclude one-time training from the timing
	expt.NoPolarBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Fig7(io.Discard, sc)
	}
}

// BenchmarkFig8 regenerates accuracy vs polar angle, ML vs no-ML (Fig. 8).
func BenchmarkFig8(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Fig8(io.Discard, sc)
	}
}

// BenchmarkFig9 regenerates accuracy vs fluence (paper Fig. 9).
func BenchmarkFig9(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Fig9(io.Discard, sc)
	}
}

// BenchmarkFig10 regenerates the perturbation robustness study (Fig. 10).
func BenchmarkFig10(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Fig10(io.Discard, sc)
	}
}

// BenchmarkTableI regenerates the single-worker (RPi 3B+ proxy) stage
// timing table (paper Table I).
func BenchmarkTableI(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.TableI(io.Discard, sc)
	}
}

// BenchmarkTableII regenerates the 4-worker (Atom proxy) stage timing table
// (paper Table II).
func BenchmarkTableII(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.TableII(io.Discard, sc)
	}
}

// BenchmarkFig11 regenerates the INT8-vs-FP32 background-model accuracy
// study (paper Fig. 11).
func BenchmarkFig11(b *testing.B) {
	sc := benchScale()
	expt.Int8Background(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Fig11(io.Discard, sc)
	}
}

// BenchmarkTableIII regenerates the FPGA kernel comparison (paper
// Table III) from the analytic dataflow model.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Table3(io.Discard)
	}
}

// BenchmarkAblationThresholds compares per-polar-bin vs global
// classification thresholds (design choice, DESIGN.md §4).
func BenchmarkAblationThresholds(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.AblationThresholds(io.Discard, sc)
	}
}

// BenchmarkAblationIterations compares iterative vs single-shot background
// rejection (the Fig. 6 design rationale).
func BenchmarkAblationIterations(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.AblationIterations(io.Discard, sc)
	}
}

// BenchmarkAblationGating compares gated vs ungated refinement.
func BenchmarkAblationGating(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		expt.AblationGating(io.Discard, sc)
	}
}

// BenchmarkAblationWidening compares dEta update policies.
func BenchmarkAblationWidening(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.AblationWidening(io.Discard, sc)
	}
}

// BenchmarkAblationThreeCompton compares the optional three-Compton
// incident-energy estimate against the paper's summed-deposit energies.
func BenchmarkAblationThreeCompton(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		expt.AblationThreeCompton(io.Discard, sc)
	}
}

// BenchmarkAPTStudy regenerates the §VI full-APT dim-burst study.
func BenchmarkAPTStudy(b *testing.B) {
	sc := benchScale()
	expt.APTBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.APTStudy(io.Discard, sc)
	}
}

// BenchmarkPileUpStudy regenerates the §VI simultaneous-events study.
func BenchmarkPileUpStudy(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.PileUpStudy(io.Discard, sc)
	}
}

// BenchmarkQuantStudy regenerates the §VI quantization-strategy study.
func BenchmarkQuantStudy(b *testing.B) {
	sc := benchScale()
	expt.SwappedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.QuantStudy(io.Discard, sc)
	}
}

// BenchmarkCoverageStudy regenerates the credible-region coverage
// calibration study (an addition of this reproduction).
func BenchmarkCoverageStudy(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.CoverageStudy(io.Discard, sc)
	}
}

// BenchmarkAblationDEtaLoss compares L2 vs Huber dEta training losses.
func BenchmarkAblationDEtaLoss(b *testing.B) {
	sc := benchScale()
	expt.SharedBundle(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.AblationDEtaLoss(io.Discard, sc)
	}
}

// BenchmarkSkymapBuild measures downlink-map construction (hierarchical
// evaluation, refinement selection, quantization, embedded contours) from
// the benchmark scene's rings at several worker counts. The output is
// bitwise-identical at every worker count (skymap.TestWorkerCountInvariance).
func BenchmarkSkymapBuild(b *testing.B) {
	_, rings := benchScene()
	cfg := localize.DefaultConfig()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				skymap.FromRings(&cfg, rings, nil, skymap.Options{Workers: workers})
			}
		})
	}
}

// BenchmarkSkymapEncode measures payload serialization (the downlink hot
// path: one encode per alert, and one per served /v1/skymap response).
func BenchmarkSkymapEncode(b *testing.B) {
	_, rings := benchScene()
	cfg := localize.DefaultConfig()
	m := skymap.FromRings(&cfg, rings, nil, skymap.Options{})
	b.SetBytes(int64(m.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Encode()
	}
}

// BenchmarkSkymapDecode measures payload parsing plus derived-grid
// reconstruction (the ground-segment path, and the fuzzed attack surface).
func BenchmarkSkymapDecode(b *testing.B) {
	_, rings := benchScene()
	cfg := localize.DefaultConfig()
	payload := skymap.FromRings(&cfg, rings, nil, skymap.Options{}).Encode()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := skymap.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// benchJournalRecords builds a quiet-sky journal workload: one canonical
// evio record per detected background event, the exact byte streams the
// flight journal holds and the downlink codec preconditions.
func benchJournalRecords(b *testing.B) ([][]byte, int64) {
	b.Helper()
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	events := bg.Simulate(&det, 0.25, xrand.New(0xD1))
	if len(events) == 0 {
		b.Fatal("no benchmark events")
	}
	records := make([][]byte, len(events))
	var raw int64
	for i, ev := range events {
		rec, err := evio.Marshal([]*detector.Event{ev})
		if err != nil {
			b.Fatal(err)
		}
		records[i] = rec
		raw += int64(len(rec))
	}
	return records, raw
}

// BenchmarkDownlinkCodecEncode measures the delta-evio batch encoder on a
// quiet-sky journal segment, with and without the deflate entropy stage,
// reporting the achieved compression ratio (EXPERIMENTS.md records it; the
// codec test enforces the 2x floor).
func BenchmarkDownlinkCodecEncode(b *testing.B) {
	records, raw := benchJournalRecords(b)
	for _, opts := range []struct {
		name string
		o    downlink.CodecOptions
	}{{"flate", downlink.CodecOptions{}}, {"noflate", downlink.CodecOptions{NoFlate: true}}} {
		b.Run(opts.name, func(b *testing.B) {
			enc, err := downlink.EncodeRecords(records, opts.o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(raw)/float64(len(enc)), "x-compression")
			b.SetBytes(raw)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := downlink.EncodeRecords(records, opts.o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDownlinkCodecDecode measures the ground-side batch decoder (the
// fuzzed attack surface) reproducing the journal records bitwise.
func BenchmarkDownlinkCodecDecode(b *testing.B) {
	records, raw := benchJournalRecords(b)
	payload, err := downlink.EncodeRecords(records, downlink.CodecOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(raw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := downlink.DecodeRecords(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDownlinkScheduler measures the priority scheduler's chunking
// throughput: enqueue mixed-class messages, drain every chunk.
func BenchmarkDownlinkScheduler(b *testing.B) {
	payload := make([]byte, 16<<10)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	b.SetBytes(4 * int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := downlink.NewScheduler(1024, nil)
		for c := downlink.Class(0); c < downlink.NumClasses; c++ {
			if _, err := s.Enqueue(0, c, payload); err != nil {
				b.Fatal(err)
			}
		}
		for {
			if _, _, ok := s.NextChunk(); !ok {
				break
			}
		}
	}
}

// BenchmarkDownlinkSession measures the full closed-loop ARQ session — the
// event-time link simulation with 10% drop and reordering — delivering one
// compressed journal batch.
func BenchmarkDownlinkSession(b *testing.B) {
	records, _ := benchJournalRecords(b)
	payload, err := downlink.EncodeRecords(records, downlink.CodecOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := downlink.NewSession(downlink.Config{
			BudgetBytesPerSec: 1 << 20,
			Seed:              uint64(i),
			Loss:              downlink.LossProfile{DropProb: 0.10, ReorderProb: 0.25},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Enqueue(downlink.ClassJournal, payload); err != nil {
			b.Fatal(err)
		}
		if !sess.Flush(1e6) {
			b.Fatal("session did not drain")
		}
	}
}
