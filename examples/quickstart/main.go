// Quickstart: simulate one gamma-ray burst on the ADAPT detector and
// localize it with the prior (no-ML) pipeline — the smallest possible use
// of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/adapt"
	"repro/internal/geom"
	"repro/internal/plot"
	"repro/internal/recon"
)

func main() {
	inst := adapt.DefaultInstrument()

	// A moderately bright short GRB, 30° off zenith.
	burst := adapt.Burst{Fluence: 1.0, PolarDeg: 30, AzimuthDeg: 120}
	obs := inst.Observe(burst, 42)
	fmt.Printf("detected %d events in the 1-second window\n", len(obs.Events))

	res := inst.Localize(obs, nil) // nil = no ML models
	if !res.Loc.OK {
		log.Fatal("localization failed")
	}
	fmt.Printf("reconstructed %d Compton rings\n", res.Rings)
	fmt.Printf("inferred source: polar %.1f°, azimuth %.1f°\n",
		geom.Deg(geom.Polar(res.Loc.Dir)), geom.Deg(geom.Azimuth(res.Loc.Dir)))
	fmt.Printf("localization error: %.2f° (self-estimate %.2f°) in %.0f ms\n",
		res.Loc.ErrorDeg(obs.TrueDirection), res.ErrorRadiusDeg, res.Timing.Total.Seconds()*1e3)

	// Render the sky: ring density converges on the burst (T = truth,
	// L = localized).
	var rings []*recon.Ring
	for _, ev := range obs.Events {
		if r, ok := recon.Reconstruct(&inst.Recon, ev); ok {
			rings = append(rings, r)
		}
	}
	fmt.Println()
	plot.SkyMap(os.Stdout, rings, map[byte]geom.Vec{'T': obs.TrueDirection, 'L': res.Loc.Dir}, 27)
}
