// Onboard: the full flight scenario. A multi-second observation campaign is
// simulated — continuous atmospheric background with gamma-ray bursts
// injected at unknown times — and the on-board system must *detect* each
// burst with its count-rate trigger and *localize* it with the Fig. 6
// pipeline, all without ground contact (paper §I).
//
// The example also shows the paper's real-time accuracy-for-latency trade
// (§III): each detected burst is additionally localized with a 1-iteration
// NN budget, as if the system were heavily loaded.
package main

import (
	"fmt"
	"log"

	"repro/adapt"
)

func main() {
	log.SetFlags(0)

	log.Println("training models (quick settings)...")
	cfg := adapt.DefaultTraining(3)
	cfg.BurstsPerAngle = 2
	cfg.Epochs = 15
	m := adapt.TrainModels(cfg)

	inst := adapt.DefaultInstrument()

	// Calibrate the quiet-sky rate from a burst-free exposure, as the
	// flight software would.
	quiet := inst.Observe(adapt.Burst{Fluence: 0}, 1)
	meanRate := float64(len(quiet.Events))
	log.Printf("calibrated background rate: %.0f events/s", meanRate)

	// A 10-second campaign with two bursts at unknown (to the system)
	// times and directions.
	type injected struct {
		t0    float64
		burst adapt.Burst
	}
	plan := []injected{
		{2.3, adapt.Burst{Fluence: 1.5, PolarDeg: 15, AzimuthDeg: 80}},
		{6.8, adapt.Burst{Fluence: 2.5, PolarDeg: 55, AzimuthDeg: 290}},
	}
	var events []*adapt.Event
	for sec := 0; sec < 10; sec++ {
		chunk := inst.Observe(adapt.Burst{Fluence: 0}, uint64(100+sec))
		for _, ev := range chunk.Events {
			ev.ArrivalTime += float64(sec)
			events = append(events, ev)
		}
	}
	for i, inj := range plan {
		obs := inst.Observe(inj.burst, uint64(500+i))
		for _, ev := range obs.Events {
			if ev.Source.String() == "grb" { // keep only the burst photons; background already simulated
				ev.ArrivalTime += inj.t0
				events = append(events, ev)
			}
		}
	}

	system := inst.NewOnboardWithSkyMaps(m, meanRate, 20, 8)
	alerts := system.ProcessExposure(events, 42)
	fmt.Printf("campaign: 10 s, %d events, %d bursts injected, %d alerts raised\n",
		len(events), len(plan), len(alerts))

	for i, a := range alerts {
		fmt.Printf("\nalert %d: trigger at t=%.2fs (%.0fσ), %d events in window\n",
			i, a.TriggerTime, a.Significance, a.NEvents)
		if !a.Result.Loc.OK {
			fmt.Println("  localization failed")
			continue
		}
		// Match to the nearest injected burst for scoring.
		var truth adapt.Burst
		for _, inj := range plan {
			if a.TriggerTime >= inj.t0-0.5 && a.TriggerTime <= inj.t0+1.5 {
				truth = inj.burst
			}
		}
		fmt.Printf("  localized to %.2f° of the true direction in %.0f ms (%d NN iterations)\n",
			a.Result.Loc.ErrorDeg(truth.SourceDirection()),
			a.Result.Timing.Total.Seconds()*1e3, a.Result.NNIterations)
		if a.SkyMap != nil {
			fmt.Printf("  downlink notice: 90%% credible area %.1f deg²\n", a.Area90Deg2)
		}
	}

	// Accuracy-for-latency trade on the first burst.
	loaded := inst
	loaded.MaxNNIters = 1
	sysLoaded := loaded.NewOnboard(m, meanRate)
	alerts1 := sysLoaded.ProcessExposure(events, 42)
	if len(alerts1) > 0 && alerts1[0].Result.Loc.OK {
		fmt.Printf("\nloaded-system variant (1 NN iteration): first alert localized to %.2f° in %.0f ms\n",
			alerts1[0].Result.Loc.ErrorDeg(plan[0].burst.SourceDirection()),
			alerts1[0].Result.Timing.Total.Seconds()*1e3)
	}
}
