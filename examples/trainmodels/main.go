// Trainmodels: train the paper's two neural networks from freshly
// simulated data, save them, and show the improvement they bring on a dim
// burst — the workflow of the paper's §III.
//
// Training takes a couple of minutes on a laptop; lower BurstsPerAngle or
// Epochs for a faster (less accurate) run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/adapt"
)

func main() {
	log.SetFlags(0)

	cfg := adapt.DefaultTraining(7)
	cfg.BurstsPerAngle = 2 // keep the example quick
	cfg.Epochs = 15
	log.Println("training background and dEta networks (a minute or two)...")
	m := adapt.TrainModels(cfg)
	fmt.Printf("background classifier held-out accuracy: %.3f\n", m.BkgTestAcc)
	fmt.Printf("dEta regressor held-out MSE (ln space):  %.3f\n", m.DEtaTestMSE)

	path := filepath.Join(os.TempDir(), "adapt-example-models.gob")
	if err := adapt.SaveModels(m, path); err != nil {
		log.Fatalf("save: %v", err)
	}
	fmt.Printf("models saved to %s\n", path)

	// Show the effect on a dim burst, where the paper reports the largest
	// gains (§IV: "especially ... for dimmer GRBs").
	inst := adapt.DefaultInstrument()
	burst := adapt.Burst{Fluence: 0.5, PolarDeg: 0}
	var noML, withML []float64
	for seed := uint64(0); seed < 10; seed++ {
		obs := inst.Observe(burst, 100+seed)
		if r := inst.Localize(obs, nil); r.Loc.OK {
			noML = append(noML, r.Loc.ErrorDeg(obs.TrueDirection))
		}
		if r := inst.Localize(obs, m); r.Loc.OK {
			withML = append(withML, r.Loc.ErrorDeg(obs.TrueDirection))
		}
	}
	fmt.Printf("dim burst (0.5 MeV/cm²) errors without ML: %s\n", fmtDegs(noML))
	fmt.Printf("dim burst (0.5 MeV/cm²) errors with ML:    %s\n", fmtDegs(withML))
}

func fmtDegs(xs []float64) string {
	s := "["
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.1f°", x)
	}
	return s + "]"
}
