// Fluencesweep: measure localization accuracy as a function of burst
// brightness, the workload behind the paper's Fig. 9. Compares the no-ML
// and ML pipelines at each fluence and prints 68%/95% containment.
package main

import (
	"fmt"
	"log"

	"repro/adapt"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	const trials = 15

	log.Println("training models (quick settings)...")
	cfg := adapt.DefaultTraining(11)
	cfg.BurstsPerAngle = 2
	cfg.Epochs = 15
	m := adapt.TrainModels(cfg)

	inst := adapt.DefaultInstrument()
	fmt.Printf("%-10s %-22s %-22s\n", "fluence", "no-ML 68%/95% (deg)", "ML 68%/95% (deg)")
	for _, fluence := range []float64{0.5, 1.0, 2.0, 4.0} {
		var plain, ml []float64
		for t := uint64(0); t < trials; t++ {
			burst := adapt.Burst{Fluence: fluence, PolarDeg: 0, AzimuthDeg: float64(t) * 24}
			obs := inst.Observe(burst, 1000*uint64(fluence*4)+t)
			if r := inst.Localize(obs, nil); r.Loc.OK {
				plain = append(plain, r.Loc.ErrorDeg(obs.TrueDirection))
			}
			if r := inst.Localize(obs, m); r.Loc.OK {
				ml = append(ml, r.Loc.ErrorDeg(obs.TrueDirection))
			}
		}
		p68, p95 := stats.Containment68And95(plain)
		m68, m95 := stats.Containment68And95(ml)
		fmt.Printf("%-10.2f %6.2f / %-13.2f %6.2f / %-13.2f\n", fluence, p68, p95, m68, m95)
	}
}
