// Quantize: the paper's §V flow end to end — train the background network
// in the fusion-friendly layer order, quantize it to INT8 with QAT, compare
// FP32-vs-INT8 localization on fresh bursts, and print the FPGA dataflow
// model's Table III for both precisions.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/adapt"
	"repro/internal/expt"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	log.Println("training the layer-swapped background network (quick settings)...")
	cfg := adapt.TrainingQuantizable(adapt.Training{Seed: 5, BurstsPerAngle: 2, Epochs: 15, WithPolar: true})
	m := adapt.TrainModels(cfg)

	log.Println("quantization-aware fine-tuning to INT8...")
	int8net, err := adapt.QuantizeBackground(m, cfg)
	if err != nil {
		log.Fatalf("quantize: %v", err)
	}

	inst := adapt.DefaultInstrument()
	var fp32Errs, int8Errs []float64
	const trials = 12
	for seed := uint64(0); seed < trials; seed++ {
		burst := adapt.Burst{Fluence: 1.0, PolarDeg: float64(10 * (seed % 8)), AzimuthDeg: float64(37 * seed)}
		obs := inst.Observe(burst, 300+seed)
		if r := inst.Localize(obs, m); r.Loc.OK {
			fp32Errs = append(fp32Errs, r.Loc.ErrorDeg(obs.TrueDirection))
		}
		if r := inst.LocalizeQuantized(obs, m, int8net); r.Loc.OK {
			int8Errs = append(int8Errs, r.Loc.ErrorDeg(obs.TrueDirection))
		}
	}
	f68, f95 := stats.Containment68And95(fp32Errs)
	i68, i95 := stats.Containment68And95(int8Errs)
	fmt.Printf("FP32 background net: 68%%=%.2f° 95%%=%.2f° over %d bursts\n", f68, f95, len(fp32Errs))
	fmt.Printf("INT8 background net: 68%%=%.2f° 95%%=%.2f° over %d bursts\n", i68, i95, len(int8Errs))
	fmt.Printf("INT8 weight storage: %d bytes\n\n", int8net.NumWeightBytes())

	// The FPGA deployment cost model (paper Table III).
	expt.Table3(os.Stdout)
}
