package adapt_test

import (
	"fmt"

	"repro/adapt"
)

// The smallest end-to-end use: simulate one burst observation and localize
// it with the prior (no-ML) pipeline.
func ExampleInstrument_Localize() {
	inst := adapt.DefaultInstrument()
	obs := inst.Observe(adapt.Burst{Fluence: 1.0, PolarDeg: 30, AzimuthDeg: 120}, 42)
	res := inst.Localize(obs, nil)
	fmt.Println("localized:", res.Loc.OK)
	fmt.Println("error under 5 degrees:", res.Loc.ErrorDeg(obs.TrueDirection) < 5)
	// Output:
	// localized: true
	// error under 5 degrees: true
}

// Training the paper's two networks and running the ML pipeline. Training
// here uses throwaway-quick settings; see DefaultTraining for real ones.
func ExampleTrainModels() {
	cfg := adapt.Training{Seed: 7, BurstsPerAngle: 1, Epochs: 2, WithPolar: true}
	m := adapt.TrainModels(cfg)

	inst := adapt.DefaultInstrument()
	obs := inst.Observe(adapt.Burst{Fluence: 1.0, PolarDeg: 10}, 3)
	res := inst.Localize(obs, m)
	fmt.Println("ML pipeline ran the background loop:", res.NNIterations >= 1)
	// Output:
	// ML pipeline ran the background loop: true
}

// The full on-board flow: detect a burst in a continuous event stream with
// the count-rate trigger, then localize it.
func ExampleInstrument_NewOnboard() {
	inst := adapt.DefaultInstrument()

	// Calibrate the quiet rate, then observe a window containing a burst.
	quiet := inst.Observe(adapt.Burst{Fluence: 0}, 1)
	obs := inst.Observe(adapt.Burst{Fluence: 2.0, PolarDeg: 20}, 2)

	sys := inst.NewOnboard(nil, float64(len(quiet.Events)))
	alerts := sys.ProcessExposure(obs.Events, 9)
	fmt.Println("bursts detected:", len(alerts))
	// Output:
	// bursts detected: 1
}
