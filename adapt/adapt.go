// Package adapt is the public API of the ADAPT on-board GRB analysis
// library, a Go reproduction of "Machine Learning Aboard the ADAPT
// Gamma-Ray Telescope" (SC 2024).
//
// The library covers the full stack the paper builds on:
//
//   - a Monte-Carlo simulator of the ADAPT four-layer scintillator detector
//     and its balloon-altitude background environment;
//   - Compton-ring reconstruction with analytic (propagation-of-error) ring
//     width estimates;
//   - the approximate-then-refine ring-intersection localization solver;
//   - the paper's two neural networks — a background-ring classifier and a
//     dη regressor — trained from simulation ground truth with a
//     from-scratch float32 NN library; and
//   - the ML-in-the-loop localization pipeline of the paper's Fig. 6, with
//     per-stage timing, INT8 quantization of the background network, and an
//     FPGA dataflow cost model.
//
// # Quick start
//
//	inst := adapt.DefaultInstrument()
//	obs := inst.Observe(adapt.Burst{Fluence: 1.0, PolarDeg: 30}, 42)
//	res := inst.Localize(obs, nil) // nil models: the prior, no-ML pipeline
//	fmt.Println(res.Loc.ErrorDeg(obs.TrueDirection))
//
// Train the networks once (minutes on a laptop) and pass them to Localize
// to enable the ML stage:
//
//	m := adapt.TrainModels(adapt.DefaultTraining(7))
//	res = inst.Localize(obs, m)
package adapt

import (
	"repro/internal/background"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/nn/quant"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/recon"
	"repro/internal/skymap"
	"repro/internal/xrand"
)

// Burst describes a simulated gamma-ray burst: fluence in MeV/cm², source
// polar angle (0° = zenith) and azimuth in degrees.
type Burst = detector.Burst

// Event is one detected photon: measured hits plus simulation ground truth.
type Event = detector.Event

// Ring is a reconstructed Compton ring.
type Ring = recon.Ring

// Models is a trained pair of networks (background classifier + dη
// regressor) with their feature normalizers and per-polar-bin thresholds.
type Models = models.Bundle

// Direction is a unit 3-vector in instrument coordinates (+Z toward the
// sky).
type Direction = geom.Vec

// Metrics is a runtime metrics registry: per-stage latency histograms and
// counters, dumpable as text or JSON. Attach one to an Instrument to get
// the paper's Tables I/II stage decomposition as a live report.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// SetDefaultParallelism caps the process-wide default worker count used by
// every parallel stage (localization grid search, NN inference sharding,
// campaign fan-out) when no explicit Workers value is set. n <= 0 restores
// the GOMAXPROCS default. Results are bitwise-identical for any value.
func SetDefaultParallelism(n int) { par.SetDefaultWorkers(n) }

// Backend names an inference backend for the background classifier:
// BackendFloat32 (default), BackendInt8, or BackendFPGASim. See the
// pipeline package for the determinism contract of each.
type Backend = pipeline.Backend

// The available inference backends.
const (
	BackendFloat32 = pipeline.BackendFloat32
	BackendInt8    = pipeline.BackendInt8
	BackendFPGASim = pipeline.BackendFPGASim
)

// ParseBackend validates a backend name from a flag; "" means float32.
func ParseBackend(s string) (Backend, error) { return pipeline.ParseBackend(s) }

// NewClassifier builds the background classifier implementing backend b
// over m's models (nil m returns nil: the no-ML pipeline). Callers that
// accept a -backend flag should use it to validate the combination of
// backend and model bundle up front — the int8 and fpga-sim backends
// require a bundle quantized with adapttrain -quantize.
func NewClassifier(b Backend, m *Models) (BkgClassifier, error) {
	return pipeline.NewClassifier(b, m)
}

// ClassifierProbsInto evaluates cls on the feature matrix x, writing one
// probability per row into out, using the classifier's buffer-reuse fast
// path when it has one. Wrappers that compose classifiers (the serving
// micro-batcher) should route inference through it rather than calling
// Probs, so the wrapped backend keeps its allocation-free path.
func ClassifierProbsInto(cls BkgClassifier, x *nn.Tensor, out []float32) {
	pipeline.ClassifierProbsInto(cls, x, out)
}

// Instrument bundles the detector, environment, and pipeline configuration.
type Instrument struct {
	// Detector is the instrument geometry and measurement model.
	Detector detector.Config
	// Background is the balloon-altitude radiation environment.
	Background background.Model
	// Recon holds reconstruction quality filters.
	Recon recon.Config
	// Loc holds the localization solver settings.
	Loc localize.Config
	// MaxNNIters bounds the ML loop (paper default: 5). The pipeline may be
	// halted earlier for real-time budget reasons by lowering this.
	MaxNNIters int
	// Workers caps pipeline parallelism: 0 means the process default
	// (SetDefaultParallelism / GOMAXPROCS), 1 forces the serial path.
	// Results are bitwise-identical for any value.
	Workers int
	// Backend selects the background-classifier inference implementation
	// ("" or BackendFloat32 for the FP32 network; BackendInt8 and
	// BackendFPGASim need a quantized model bundle).
	Backend Backend
	// Metrics, when non-nil, collects per-stage latency histograms and
	// counters across every localization this instrument runs.
	Metrics *Metrics
}

// DefaultInstrument returns the ADAPT configuration used throughout the
// paper reproduction.
func DefaultInstrument() Instrument {
	return Instrument{
		Detector:   detector.DefaultConfig(),
		Background: background.DefaultModel(),
		Recon:      recon.DefaultConfig(),
		Loc:        localize.DefaultConfig(),
		MaxNNIters: 5,
	}
}

// Observation is one simulated exposure: the burst's photons plus the
// background particles of the same 1-second window.
type Observation struct {
	// Events holds every detected photon, GRB and background mixed.
	Events []*Event
	// TrueDirection is the burst's actual source direction.
	TrueDirection Direction
	// Burst echoes the simulated burst parameters.
	Burst Burst
}

// Observe simulates a burst and its background window. The result is
// deterministic in (instrument, burst, seed).
func (inst *Instrument) Observe(b Burst, seed uint64) *Observation {
	rng := xrand.New(seed)
	events := detector.SimulateBurst(&inst.Detector, b, rng)
	events = append(events, inst.Background.Simulate(&inst.Detector, 1.0, rng)...)
	return &Observation{Events: events, TrueDirection: b.SourceDirection(), Burst: b}
}

// Result is a localization outcome.
type Result = pipeline.Result

// Localize runs the analysis pipeline over an observation. Passing nil
// models runs the paper's prior no-ML pipeline; with models, the Fig. 6
// ML-in-the-loop pipeline runs (background rejection iterated up to
// MaxNNIters, then dη refinement, then a final localization).
func (inst *Instrument) Localize(obs *Observation, m *Models) Result {
	return inst.LocalizeEvents(obs.Events, m, 1)
}

// LocalizeEvents is Localize for a caller-assembled event list; seed
// controls the solver's random sampling.
func (inst *Instrument) LocalizeEvents(events []*Event, m *Models, seed uint64) Result {
	return inst.LocalizeEventsWithClassifier(events, m, nil, seed)
}

// BkgClassifier is the pipeline's background-classifier contract: anything
// producing background probabilities for normalized feature rows. The
// bundle's FP32 network, the INT8 quantized network, and the serving
// layer's cross-request micro-batcher all satisfy it.
type BkgClassifier = pipeline.BkgClassifier

// LocalizeEventsWithClassifier is LocalizeEvents with the bundle's FP32
// background network replaced by cls (the bundle's thresholds and feature
// normalizers still apply); a nil cls runs the bundle's own network. The
// serving layer (internal/serve) uses it to route NN inference through a
// batcher shared across concurrent requests. Because inference is
// row-independent, the result is bitwise-identical to LocalizeEvents for
// any cls that evaluates the same network.
func (inst *Instrument) LocalizeEventsWithClassifier(events []*Event, m *Models, cls BkgClassifier, seed uint64) Result {
	opts := pipeline.DefaultOptions()
	opts.Recon = inst.Recon
	opts.Loc = inst.Loc
	if inst.MaxNNIters > 0 {
		opts.MaxNNIters = inst.MaxNNIters
	}
	opts.Bundle = m
	opts.BkgOverride = cls
	opts.Backend = inst.Backend
	opts.Workers = inst.Workers
	opts.Metrics = inst.Metrics
	return pipeline.Run(opts, events, xrand.New(seed))
}

// Training configures TrainModels.
type Training struct {
	// Seed makes dataset generation and training deterministic.
	Seed uint64
	// BurstsPerAngle sizes the training set (bursts per polar angle, nine
	// angles 0°–80°).
	BurstsPerAngle int
	// Epochs bounds training (the paper trains up to 120 with early
	// stopping).
	Epochs int
	// WithPolar includes the polar-angle guess input (the paper's
	// production configuration).
	WithPolar bool
	// Logf, when non-nil, receives training progress lines.
	Logf func(format string, args ...any)

	// swapped selects the fusion-friendly architecture (see
	// TrainingQuantizable).
	swapped bool
}

// DefaultTraining returns a laptop-scale training configuration.
func DefaultTraining(seed uint64) Training {
	return Training{Seed: seed, BurstsPerAngle: 3, Epochs: 30, WithPolar: true}
}

// TrainModels generates a labeled simulation dataset and trains both
// networks with the paper's protocol (80/20 train/test, nested 80/20
// train/validation, SGD with early stopping, per-polar-bin thresholds).
func TrainModels(cfg Training) *Models {
	gen := datagen.DefaultConfig(cfg.Seed)
	if cfg.BurstsPerAngle > 0 {
		gen.BurstsPerAngle = cfg.BurstsPerAngle
	}
	set := datagen.Generate(gen)
	opts := models.DefaultTrainOptions(cfg.Seed + 1)
	opts.WithPolar = cfg.WithPolar
	opts.Swapped = cfg.swapped
	opts.Logf = cfg.Logf
	if cfg.Epochs > 0 {
		opts.MaxEpochs = cfg.Epochs
	}
	// Scaled-dataset step size; see EXPERIMENTS.md "Training protocol".
	opts.BkgLR = 5e-3
	opts.BkgBatch = 1024
	return models.Train(set, opts)
}

// LoadModels reads a model pair saved with SaveModels (or Models.SaveFile).
func LoadModels(path string) (*Models, error) { return models.LoadBundleFile(path) }

// SaveModels writes a trained model pair to path.
func SaveModels(m *Models, path string) error { return m.SaveFile(path) }

// Int8Background is the quantized background classifier (paper §V).
type Int8Background = quant.Int8Net

// QuantizeBackground converts a model bundle's background network to INT8
// and attaches the result to the bundle (Models.Int8), so a subsequent
// SaveModels persists it and the int8/fpga-sim backends can use it. The
// bundle must have been trained with TrainingQuantizable (the layer-swapped
// architecture that permits Linear+BN+ReLU fusion). The
// calibration/fine-tuning data is regenerated from cfg's simulation
// settings, as in TrainModels.
func QuantizeBackground(m *Models, cfg Training) (*Int8Background, error) {
	gen := datagen.DefaultConfig(cfg.Seed)
	if cfg.BurstsPerAngle > 0 {
		gen.BurstsPerAngle = cfg.BurstsPerAngle
	}
	set := datagen.Generate(gen)
	qopts := models.DefaultQuantizeOptions(cfg.Seed + 2)
	qopts.Logf = cfg.Logf
	if cfg.Epochs > 0 && cfg.Epochs < qopts.QATEpochs {
		qopts.QATEpochs = cfg.Epochs
	}
	int8net, _, err := models.QuantizeBackground(m, set, qopts)
	if err != nil {
		return nil, err
	}
	m.Int8 = int8net
	return int8net, nil
}

// TrainingQuantizable marks a Training configuration to produce the
// layer-swapped (fusion-friendly) background architecture required by
// QuantizeBackground.
func TrainingQuantizable(cfg Training) Training {
	cfg.swapped = true
	return cfg
}

// LocalizeQuantized is Localize with the INT8 background classifier
// substituted for the bundle's FP32 network (thresholds and normalizers
// still come from the bundle). Int8Background implements BkgClassifier
// directly via its batched integer GEMM.
func (inst *Instrument) LocalizeQuantized(obs *Observation, m *Models, int8net *Int8Background) Result {
	return inst.LocalizeEventsWithClassifier(obs.Events, m, int8net, 1)
}

// Alert is one burst detected and localized by the on-board system.
type Alert = core.Alert

// Onboard is the full flight system: a count-rate burst trigger feeding the
// localization pipeline (internal/core). Unlike Localize, which assumes the
// caller already knows which events belong to the burst, Onboard scans a
// whole exposure, finds the burst windows itself, and localizes each.
type Onboard struct {
	sys *core.System
}

// NewOnboard builds the flight system. meanBackgroundRate is the expected
// quiet-sky detected-event rate in events/second (calibrated in flight; use
// the observed rate of a burst-free exposure). m may be nil for the no-ML
// pipeline.
func (inst *Instrument) NewOnboard(m *Models, meanBackgroundRate float64) *Onboard {
	cfg := core.DefaultConfig(meanBackgroundRate)
	cfg.Recon = inst.Recon
	cfg.Loc = inst.Loc
	cfg.Bundle = m
	cfg.Backend = inst.Backend
	if inst.MaxNNIters > 0 {
		cfg.MaxNNIters = inst.MaxNNIters
	}
	cfg.Workers = inst.Workers
	cfg.Metrics = inst.Metrics
	return &Onboard{sys: core.NewSystem(cfg)}
}

// NewOnboardWithSkyMaps is NewOnboard with posterior sky maps attached to
// each alert: bands sets the map resolution (16–24 typical) and
// temperature the empirically fitted systematic inflation (8 reproduces
// near-nominal credible-region coverage on the default instrument; see the
// coverage study in internal/expt). Every alert also carries the encoded
// downlink map payload (Alert.SkyMapPayload, internal/skymap format),
// tempered at the same temperature (temperature ≤ 0 uses the payload
// default).
func (inst *Instrument) NewOnboardWithSkyMaps(m *Models, meanBackgroundRate float64, bands int, temperature float64) *Onboard {
	cfg := core.DefaultConfig(meanBackgroundRate)
	cfg.Recon = inst.Recon
	cfg.Loc = inst.Loc
	cfg.Bundle = m
	cfg.Backend = inst.Backend
	if inst.MaxNNIters > 0 {
		cfg.MaxNNIters = inst.MaxNNIters
	}
	cfg.Workers = inst.Workers
	cfg.Metrics = inst.Metrics
	cfg.SkyMapBands = bands
	cfg.SkyMapTemperature = temperature
	cfg.SkyMapPayload = true
	if temperature > 0 {
		cfg.SkyMapPayloadOpts.Temperature = temperature
	}
	return &Onboard{sys: core.NewSystem(cfg)}
}

// DownlinkMap is a decoded downlink-grade quantized sky map (the payload
// attached to alerts and served by /v1/skymap). See internal/skymap for
// the format contract.
type DownlinkMap = skymap.Map

// SkyMapOptions configures downlink map construction (resolution, tile
// budget, tempering); the zero value means the calibrated defaults.
type SkyMapOptions = skymap.Options

// DecodeSkyMap parses and validates an encoded downlink map payload.
func DecodeSkyMap(b []byte) (*DownlinkMap, error) { return skymap.Decode(b) }

// BuildSkyMap renders a downlink map from a localization result's
// surviving rings using inst's solver configuration. The payload
// (DownlinkMap.Encode) is a pure function of (rings, opts) —
// bitwise-identical at any parallelism.
func (inst *Instrument) BuildSkyMap(res Result, opts SkyMapOptions) *DownlinkMap {
	return skymap.FromRings(&inst.Loc, res.ActiveRings, nil, opts)
}

// ProcessExposure scans an exposure's events for bursts and returns one
// alert per detected burst.
func (o *Onboard) ProcessExposure(events []*Event, seed uint64) []Alert {
	return o.sys.ProcessExposure(events, xrand.New(seed))
}
