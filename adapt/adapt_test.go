package adapt

import (
	"os"
	"path/filepath"
	"testing"
)

func TestObserveDeterministic(t *testing.T) {
	inst := DefaultInstrument()
	b := Burst{Fluence: 1.0, PolarDeg: 20, AzimuthDeg: 45}
	o1 := inst.Observe(b, 7)
	o2 := inst.Observe(b, 7)
	if len(o1.Events) != len(o2.Events) {
		t.Fatal("same seed, different event counts")
	}
	if len(o1.Events) == 0 {
		t.Fatal("no events")
	}
	if o1.TrueDirection != b.SourceDirection() {
		t.Error("TrueDirection mismatch")
	}
	o3 := inst.Observe(b, 8)
	if len(o3.Events) == len(o1.Events) && o3.Events[0].TotalE() == o1.Events[0].TotalE() {
		t.Error("different seeds produced identical observations")
	}
}

func TestLocalizeNoML(t *testing.T) {
	inst := DefaultInstrument()
	obs := inst.Observe(Burst{Fluence: 1.5, PolarDeg: 10, AzimuthDeg: 200}, 3)
	res := inst.Localize(obs, nil)
	if !res.Loc.OK {
		t.Fatal("localization failed")
	}
	if err := res.Loc.ErrorDeg(obs.TrueDirection); err > 10 {
		t.Errorf("bright burst error %v°", err)
	}
}

func TestTrainSaveLoadLocalize(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	cfg := DefaultTraining(5)
	cfg.BurstsPerAngle = 1
	cfg.Epochs = 3
	m := TrainModels(cfg)
	if m.BkgTestAcc <= 0.4 {
		t.Errorf("classifier accuracy %v", m.BkgTestAcc)
	}

	path := filepath.Join(t.TempDir(), "m.gob")
	if err := SaveModels(m, path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModels(path)
	if err != nil {
		t.Fatal(err)
	}

	inst := DefaultInstrument()
	obs := inst.Observe(Burst{Fluence: 1.0, PolarDeg: 0}, 11)
	r1 := inst.Localize(obs, m)
	obs2 := inst.Observe(Burst{Fluence: 1.0, PolarDeg: 0}, 11)
	r2 := inst.Localize(obs2, m2)
	if !r1.Loc.OK || !r2.Loc.OK {
		t.Fatal("ML localization failed")
	}
	if r1.Loc.Dir.Sub(r2.Loc.Dir).Norm() > 1e-9 {
		t.Error("saved/loaded models changed the result")
	}
	if r1.NNIterations == 0 {
		t.Error("ML loop did not run")
	}
}

func TestMaxNNItersKnob(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	cfg := DefaultTraining(6)
	cfg.BurstsPerAngle = 1
	cfg.Epochs = 2
	m := TrainModels(cfg)
	inst := DefaultInstrument()
	inst.MaxNNIters = 1
	obs := inst.Observe(Burst{Fluence: 1.0, PolarDeg: 0}, 12)
	res := inst.Localize(obs, m)
	if res.NNIterations > 1 {
		t.Errorf("early-exit knob ignored: %d iterations", res.NNIterations)
	}
}

func TestLoadModelsMissingFile(t *testing.T) {
	if _, err := LoadModels(filepath.Join(os.TempDir(), "definitely-missing.gob")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestQuantizeBackgroundFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	cfg := TrainingQuantizable(Training{Seed: 9, BurstsPerAngle: 1, Epochs: 2, WithPolar: true})
	m := TrainModels(cfg)
	int8net, err := QuantizeBackground(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst := DefaultInstrument()
	obs := inst.Observe(Burst{Fluence: 1.0, PolarDeg: 20}, 77)
	r := inst.LocalizeQuantized(obs, m, int8net)
	if !r.Loc.OK {
		t.Fatal("quantized localization failed")
	}
	if r.NNIterations == 0 {
		t.Error("INT8 classifier loop did not run")
	}

	// The unswapped architecture must be rejected.
	plain := TrainModels(Training{Seed: 10, BurstsPerAngle: 1, Epochs: 2, WithPolar: true})
	if _, err := QuantizeBackground(plain, cfg); err == nil {
		t.Error("quantizing the unswapped architecture should fail")
	}
}
