# Developer entry points, mirroring the CI gates (.github/workflows/ci.yml).
# `make build test` matches the tier-1 verify command in ROADMAP.md.

GO ?= go

.PHONY: all build test race bench cover fmt vet serve-smoke stream-smoke merge-smoke fuzz-smoke check clean

all: build test

## build: compile every package
build:
	$(GO) build ./...

## test: run the full test suite (tier-1 verify: make build test)
test:
	$(GO) test ./...

## race: run the full test suite under the race detector (CI gate)
race:
	$(GO) test -race -timeout 40m ./...

## bench: one iteration of every benchmark (CI smoke); set BENCHTIME for real runs
BENCHTIME ?= 1x
bench:
	ADAPT_SCALE=ci $(GO) test -bench=. -benchtime=$(BENCHTIME) -run '^$$' ./...

## cover: test with coverage summary
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

## fmt: list files needing gofmt (fails if any)
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "$$out"; exit 1; fi

## vet: static analysis
vet:
	$(GO) vet ./...

## serve-smoke: end-to-end adaptserve smoke test (CI serve-smoke job)
serve-smoke:
	./scripts/serve_smoke.sh

## stream-smoke: record→crash→replay adaptstream smoke test (CI stream-smoke job)
stream-smoke:
	./scripts/stream_smoke.sh

## merge-smoke: split→skew→merge bitwise-alert smoke test (CI merge-smoke job)
merge-smoke:
	./scripts/merge_smoke.sh

## fuzz-smoke: short native-fuzz runs of the untrusted-input decoders (CI)
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzReader -fuzztime=$(FUZZTIME) -run '^$$' ./internal/evio
	$(GO) test -fuzz=FuzzRecover -fuzztime=$(FUZZTIME) -run '^$$' ./internal/flightlog
	$(GO) test -fuzz=FuzzMerge -fuzztime=$(FUZZTIME) -run '^$$' ./internal/merge

## check: everything CI checks
check: build fmt vet race

clean:
	rm -f coverage.out
