# Developer entry points, mirroring the CI gates (.github/workflows/ci.yml).
# `make build test` matches the tier-1 verify command in ROADMAP.md.

GO ?= go

.PHONY: all build test race bench cover fmt vet lint serve-smoke fleet-smoke stream-smoke merge-smoke backend-parity skymap-smoke chaos-smoke downlink-smoke fuzz-smoke check clean

all: build test

## build: compile every package
build:
	$(GO) build ./...

## test: run the full test suite (tier-1 verify: make build test)
test:
	$(GO) test ./...

## race: run the full test suite under the race detector (CI gate)
race:
	$(GO) test -race -timeout 40m ./...

## bench: one iteration of every benchmark (CI smoke); set BENCHTIME for real runs
BENCHTIME ?= 1x
bench:
	ADAPT_SCALE=ci $(GO) test -bench=. -benchtime=$(BENCHTIME) -run '^$$' ./...

## cover: test with coverage summary
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

## fmt: list files needing gofmt (fails if any)
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "$$out"; exit 1; fi

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: vet plus staticcheck and govulncheck (CI lint job). The extra
## tools are not vendored; locally they run only if already on PATH
## (install with `go install honnef.co/go/tools/cmd/staticcheck@latest`
## and `go install golang.org/x/vuln/cmd/govulncheck@latest`).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (CI runs it)"; \
	fi

## serve-smoke: end-to-end adaptserve smoke test (CI serve-smoke job)
serve-smoke:
	./scripts/serve_smoke.sh

## fleet-smoke: 3-replica fleet behind adaptrouter — bitwise routed-vs-direct
## and hit-vs-miss comparisons, zero failed requests while a replica is
## kill -9ed mid-load, ejection visible in /metrics (CI fleet-smoke job)
fleet-smoke:
	./scripts/fleet_smoke.sh

## stream-smoke: record→crash→replay adaptstream smoke test (CI stream-smoke job)
stream-smoke:
	./scripts/stream_smoke.sh

## merge-smoke: split→skew→merge bitwise-alert smoke test (CI merge-smoke job)
merge-smoke:
	./scripts/merge_smoke.sh

## backend-parity: golden-scenario parity across float32/int8/fpga-sim
## backends — exact trigger identity, bitwise integer agreement, bounded
## localization drift (CI backend-parity job)
backend-parity:
	./scripts/backend_parity.sh

## skymap-smoke: downlink sky-map determinism end to end — journal replay
## reproduces alert map payloads bitwise at any worker count, adaptmap
## round-trips every payload exactly, and /v1/skymap through adaptrouter is
## bitwise-identical and cacheable (CI skymap-smoke job)
skymap-smoke:
	./scripts/skymap_smoke.sh

## chaos-smoke: run the built-in multi-fault "flight" chaos scenario through
## adaptsim -scenario and require the mission scorecard and alert records to
## reproduce bitwise across runs and worker counts (CI chaos-smoke job)
chaos-smoke:
	./scripts/chaos_smoke.sh

## downlink-smoke: journal + alerts through an emulated 10% lossy downlink —
## ground artifacts byte-identical to onboard, nonzero retransmits, and the
## adaptlink transmit/receive/emulate paths agree (CI downlink-smoke job)
downlink-smoke:
	./scripts/downlink_smoke.sh

## fuzz-smoke: short native-fuzz runs of the untrusted-input decoders and
## the int8 arithmetic kernels (CI)
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzReader -fuzztime=$(FUZZTIME) -run '^$$' ./internal/evio
	$(GO) test -fuzz=FuzzRecover -fuzztime=$(FUZZTIME) -run '^$$' ./internal/flightlog
	$(GO) test -fuzz=FuzzMerge -fuzztime=$(FUZZTIME) -run '^$$' ./internal/merge
	$(GO) test -fuzz=FuzzRequantize -fuzztime=$(FUZZTIME) -run '^$$' ./internal/nn/quant
	$(GO) test -fuzz=FuzzDotInt8 -fuzztime=$(FUZZTIME) -run '^$$' ./internal/nn/quant
	$(GO) test -fuzz=FuzzSkymapDecode -fuzztime=$(FUZZTIME) -run '^$$' ./internal/skymap
	$(GO) test -fuzz=FuzzScenarioParse -fuzztime=$(FUZZTIME) -run '^$$' ./internal/chaos
	$(GO) test -fuzz=FuzzChunkDecode -fuzztime=$(FUZZTIME) -run '^$$' ./internal/downlink
	$(GO) test -fuzz=FuzzDeltaEvio -fuzztime=$(FUZZTIME) -run '^$$' ./internal/downlink

## check: everything CI checks
check: build fmt vet race

clean:
	rm -f coverage.out
