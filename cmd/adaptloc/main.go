// Command adaptloc simulates a burst and runs the full localization
// pipeline on it, printing the inferred direction, its error, and the
// per-stage timing decomposition.
//
// Usage:
//
//	adaptloc -fluence 1.0 -polar 40 -models models.gob
//	adaptloc -parallelism 4 -repeat 20 -report        # stage-timing report
//	adaptloc -cpuprofile cpu.pprof                    # profile the hot path
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/evio"
	"repro/internal/geom"
	"repro/internal/plot"
	"repro/internal/recon"
	"repro/internal/sky"
	smap "repro/internal/skymap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptloc: ")
	fluence := flag.Float64("fluence", 1.0, "burst fluence in MeV/cm²")
	polar := flag.Float64("polar", 0, "source polar angle in degrees")
	azimuth := flag.Float64("azimuth", 30, "source azimuth in degrees")
	seed := flag.Uint64("seed", 1, "simulation seed")
	modelPath := flag.String("models", "", "trained model bundle (empty = no-ML pipeline)")
	backendName := flag.String("backend", "float32", "inference backend: float32, int8, or fpga-sim (int8/fpga-sim need a bundle from adapttrain -quantize)")
	eventsPath := flag.String("events", "", "read events from an evio file (written by adaptsim -binary) instead of simulating")
	skymap := flag.Bool("skymap", false, "compute the posterior sky map: analytic and tempered credible areas plus an ASCII rendering")
	skymapTemp := flag.Float64("skymap-temp", smap.DefaultTemperature,
		"posterior tempering temperature for the tempered credible areas (the empirically "+
			"fitted systematic inflation — see the coverage study in EXPERIMENTS.md; 1 = statistical-only, must be > 0)")
	parallelism := flag.Int("parallelism", 0, "worker count for the parallel pipeline stages (0 = GOMAXPROCS, 1 = serial)")
	repeat := flag.Int("repeat", 1, "run the pipeline this many times (same events; use with -report for stable stage statistics)")
	report := flag.Bool("report", false, "print the per-stage latency report (mean/p50/p90/p99 per stage) after the run")
	metricsJSON := flag.String("metrics-json", "", "also write the stage metrics as JSON to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("adaptloc"))
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	backend, err := adapt.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("%v", err)
	}

	adapt.SetDefaultParallelism(*parallelism)
	inst := adapt.DefaultInstrument()
	inst.Workers = *parallelism
	inst.Backend = backend
	metrics := adapt.NewMetrics()
	inst.Metrics = metrics
	var m *adapt.Models
	if *modelPath != "" {
		m, err = adapt.LoadModels(*modelPath)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
	}
	if _, err := adapt.NewClassifier(backend, m); err != nil {
		log.Fatalf("%v", err)
	}

	var events []*adapt.Event
	var truth *geom.Vec
	if *eventsPath != "" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			log.Fatal(err)
		}
		events, err = evio.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			log.Fatalf("read events: %v", err)
		}
		// Recover the truth direction from the GRB events' ground truth,
		// if present, for error reporting.
		for _, ev := range events {
			if ev.Source.String() == "grb" {
				t := ev.TrueSource
				truth = &t
				break
			}
		}
	} else {
		obs := inst.Observe(adapt.Burst{Fluence: *fluence, PolarDeg: *polar, AzimuthDeg: *azimuth}, *seed)
		events = obs.Events
		t := obs.TrueDirection
		truth = &t
	}

	if *repeat < 1 {
		*repeat = 1
	}
	res := inst.LocalizeEvents(events, m, *seed)
	for i := 1; i < *repeat; i++ {
		inst.LocalizeEvents(events, m, *seed)
	}
	if !res.Loc.OK {
		log.Fatal("localization failed: no usable rings")
	}

	fmt.Printf("inferred direction: polar %.2f°, azimuth %.2f°\n",
		geom.Deg(geom.Polar(res.Loc.Dir)), geom.Deg(geom.Azimuth(res.Loc.Dir)))
	if truth != nil {
		fmt.Printf("true direction:     polar %.2f°, azimuth %.2f°\n",
			geom.Deg(geom.Polar(*truth)), geom.Deg(geom.Azimuth(*truth)))
		fmt.Printf("localization error: %.2f°\n", res.Loc.ErrorDeg(*truth))
	}
	fmt.Printf("self-reported 1σ radius: %.2f°\n", res.ErrorRadiusDeg)
	fmt.Printf("rings: %d reconstructed, %d kept after background filter\n", res.Rings, res.Kept)
	if m != nil {
		fmt.Printf("NN loop iterations: %d\n", res.NNIterations)
	}
	fmt.Printf("timing: reconstruction %.1fms, setup %.1fms, bkg NN %.1fms, dEta NN %.1fms, approx+refine %.1fms, total %.1fms\n",
		res.Timing.Reconstruction.Seconds()*1e3,
		res.Timing.Setup.Seconds()*1e3,
		res.Timing.BkgNN.Seconds()*1e3,
		res.Timing.DEtaNN.Seconds()*1e3,
		res.Timing.ApproxRefine.Seconds()*1e3,
		res.Timing.Total.Seconds()*1e3)

	if *report {
		metrics.WriteText(os.Stdout)
	}
	if *metricsJSON != "" {
		f, err := os.Create(*metricsJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := metrics.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote stage metrics to %s", *metricsJSON)
	}

	if *skymap {
		if *skymapTemp <= 0 {
			log.Fatal("-skymap-temp must be > 0 (1 = statistical-only)")
		}
		var rings []*recon.Ring
		for _, ev := range events {
			if r, ok := recon.Reconstruct(&inst.Recon, ev); ok {
				rings = append(rings, r)
			}
		}
		m := sky.Likelihood(&inst.Loc, rings, sky.NewGrid(24))
		tm := m.Tempered(*skymapTemp)
		// The analytic areas undercover (EXPERIMENTS.md measures 0.55
		// observed at 0.68 nominal); the tempered areas are the calibrated
		// numbers a notice should quote.
		fmt.Printf("posterior sky map: analytic 68%% area %.1f deg², 90%% area %.1f deg²\n",
			m.CredibleAreaDeg2(0.68), m.CredibleAreaDeg2(0.90))
		fmt.Printf("tempered (T=%g):   calibrated 68%% area %.1f deg², 90%% area %.1f deg²\n",
			*skymapTemp, tm.CredibleAreaDeg2(0.68), tm.CredibleAreaDeg2(0.90))
		marks := map[byte]geom.Vec{'L': res.Loc.Dir}
		if truth != nil {
			marks['T'] = *truth
		}
		plot.SkyMap(os.Stdout, rings, marks, 27)
	}
}
