// Command adaptflight runs a mission-analysis campaign: a population of
// bursts with a log N–log S brightness distribution processed by the full
// on-board system (trigger + localization), reporting detection efficiency
// and localization accuracy per fluence band, the estimated sensitivity
// threshold, and the false-alert count.
//
// Usage:
//
//	adaptflight -bursts 30
//	adaptflight -bursts 50 -models models.gob -alerts alerts.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/campaign"
)

type alertRecord struct {
	Fluence     float64 `json:"fluence_mev_cm2"`
	PolarDeg    float64 `json:"true_polar_deg"`
	Detected    bool    `json:"detected"`
	Localized   bool    `json:"localized"`
	ErrorDeg    float64 `json:"error_deg,omitempty"`
	EstimateDeg float64 `json:"self_estimate_deg,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptflight: ")
	bursts := flag.Int("bursts", 30, "number of bursts to inject")
	seed := flag.Uint64("seed", 1, "campaign seed")
	modelPath := flag.String("models", "", "trained model bundle (empty = no-ML pipeline)")
	backendName := flag.String("backend", "float32", "inference backend: float32, int8, or fpga-sim (int8/fpga-sim need a bundle from adapttrain -quantize)")
	alertsPath := flag.String("alerts", "", "write per-burst outcomes as JSON lines to this file")
	quiet := flag.Float64("quiet", 2, "quiet seconds around each burst")
	parallelism := flag.Int("parallelism", 0, "worker count for the per-trial fan-out (0 = GOMAXPROCS, 1 = serial; outcomes identical either way)")
	report := flag.Bool("report", false, "print the per-stage latency report accumulated across all trials")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("adaptflight"))
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	backend, err := adapt.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("%v", err)
	}

	adapt.SetDefaultParallelism(*parallelism)
	metrics := adapt.NewMetrics()
	cfg := campaign.DefaultConfig(*seed)
	cfg.Bursts = *bursts
	cfg.QuietSecondsPerBurst = *quiet
	cfg.Workers = *parallelism
	cfg.Backend = backend
	cfg.Metrics = metrics
	if *modelPath != "" {
		m, err := adapt.LoadModels(*modelPath)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		cfg.Bundle = m
	}
	if _, err := adapt.NewClassifier(backend, cfg.Bundle); err != nil {
		log.Fatalf("%v", err)
	}

	res := campaign.Run(cfg, os.Stdout)
	fmt.Printf("estimated 90%%-efficiency sensitivity: %.2f MeV/cm²\n", res.SensitivityFluence())
	if *report {
		metrics.WriteText(os.Stdout)
	}

	if *alertsPath != "" {
		f, err := os.Create(*alertsPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		for _, o := range res.Outcomes {
			rec := alertRecord{
				Fluence:  o.Burst.Fluence,
				PolarDeg: o.Burst.PolarDeg,
				Detected: o.Detected, Localized: o.Localized,
				ErrorDeg: o.ErrorDeg, EstimateDeg: o.EstimateDeg,
			}
			if err := enc.Encode(rec); err != nil {
				log.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d outcome records to %s", len(res.Outcomes), *alertsPath)
	}
}
