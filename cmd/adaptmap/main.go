// Command adaptmap decodes downlink sky-map payloads (internal/skymap):
// it prints the header summary and a credible-area table, verifies the
// encode→decode round trip byte-for-byte, and renders the quantized
// posterior as an ASCII density map.
//
// Three input forms, exactly one per run:
//
//	adaptmap payload.bin              # raw binary payload file
//	adaptmap -b64 QVNLTQ...           # base64 payload string (skymap_b64)
//	adaptmap -alerts alerts.jsonl     # every record of an adaptstream file
//
// The round-trip check is the ground-segment acceptance test: a decoded
// map must re-encode to the exact bytes that came down, otherwise the
// payload (or this decoder) is corrupt and adaptmap exits non-zero.
package main

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/geom"
	"repro/internal/plot"
	"repro/internal/sky"
	"repro/internal/skymap"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptmap: ")
	b64 := flag.String("b64", "", "decode this base64 payload string instead of a file")
	alerts := flag.String("alerts", "", "decode the skymap_b64 payload of every record in this alerts JSONL file")
	levels := flag.String("levels", "0.50,0.68,0.90,0.95,0.99", "comma-separated credible levels for the area table")
	render := flag.Bool("render", true, "print the ASCII posterior rendering")
	size := flag.Int("size", 27, "rendering diameter in characters")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("adaptmap"))
		return
	}

	ps, err := parseLevels(*levels)
	if err != nil {
		log.Fatal(err)
	}

	sources := 0
	for _, set := range []bool{*b64 != "", *alerts != "", flag.NArg() > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		log.Fatal("need exactly one input: a payload file argument, -b64, or -alerts")
	}

	failed := false
	switch {
	case *b64 != "":
		payload, err := base64.StdEncoding.DecodeString(*b64)
		if err != nil {
			log.Fatalf("bad base64: %v", err)
		}
		failed = !inspect(payload, "payload", ps, *render, *size)
	case *alerts != "":
		f, err := os.Open(*alerts)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		n := 0
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			n++
			var rec stream.Record
			if err := json.Unmarshal(line, &rec); err != nil {
				log.Fatalf("record %d: %v", n, err)
			}
			if rec.SkyMapB64 == "" {
				fmt.Printf("alert %d (t=%.3fs): no sky-map payload\n\n", n, rec.TriggerS)
				continue
			}
			payload, err := base64.StdEncoding.DecodeString(rec.SkyMapB64)
			if err != nil {
				log.Fatalf("record %d: bad skymap_b64: %v", n, err)
			}
			label := fmt.Sprintf("alert %d (t=%.3fs, %.1fσ)", n, rec.TriggerS, rec.Significance)
			if !inspect(payload, label, ps, *render, *size) {
				failed = true
			}
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			log.Fatal("no records in alerts file")
		}
	default:
		payload, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		failed = !inspect(payload, flag.Arg(0), ps, *render, *size)
	}
	if failed {
		os.Exit(1)
	}
}

// inspect decodes one payload, prints its summary, verifies the byte-exact
// round trip, and reports whether everything checked out.
func inspect(payload []byte, label string, levels []float64, render bool, size int) bool {
	m, err := skymap.Decode(payload)
	if err != nil {
		fmt.Printf("%s: DECODE FAILED: %v\n", label, err)
		return false
	}
	coarsePx := sky.NewGrid(m.CoarseBands).NumPixels()
	peak := m.Peak()
	fmt.Printf("%s: %s v%d, %d bytes\n", label, skymap.Magic, skymap.Version, len(payload))
	fmt.Printf("  geometry:    %d coarse bands (%d px) + %d tiles × refine %d (%d fine px)\n",
		m.CoarseBands, coarsePx, len(m.Tiles), m.RefineFactor, m.NumFine())
	fmt.Printf("  quantization: floor %.1f log-units below peak, temperature %g\n",
		-m.LogFloor, m.Temperature)
	fmt.Printf("  peak:        polar %.2f°, azimuth %.2f°\n",
		geom.Deg(geom.Polar(peak)), geom.Deg(geom.Azimuth(peak)))
	fmt.Printf("  embedded:    68%% area %.1f deg², 90%% area %.1f deg²\n", m.Area68, m.Area90)

	ok := true
	if re := m.Encode(); !bytes.Equal(re, payload) {
		fmt.Printf("  round-trip:  FAILED — re-encoded payload differs from input\n")
		ok = false
	} else {
		fmt.Printf("  round-trip:  OK (decode→encode byte-identical)\n")
	}

	fmt.Printf("  credible areas (recomputed from quantized cells):\n")
	for _, p := range levels {
		fmt.Printf("    %3.0f%%  %8.1f deg²\n", p*100, m.CredibleAreaDeg2(p))
	}

	if render {
		marks := map[byte]geom.Vec{'P': peak}
		plot.Density(os.Stdout, func(d geom.Vec) float64 {
			return math.Exp(m.LogDensity(d))
		}, marks, size, "orthographic view from zenith; shading = decoded posterior density, P = peak")
	}
	fmt.Println()
	return ok
}

func parseLevels(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		p, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -levels entry %q: %v", tok, err)
		}
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("-levels entry %v outside (0, 1)", p)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-levels is empty")
	}
	return out, nil
}
