// Command adaptstream runs the real-time streaming trigger pipeline
// (internal/stream) over a live simulated exposure, a recorded evio event
// file, or a durable flight journal, and emits one JSON alert record per
// detected burst.
//
// Three modes, by input source:
//
//	adaptstream -exposure 3 -burst-at 1.2 -fluence 2 -journal ./fl   # live sim, recorded
//	adaptstream -input events.evio -alerts alerts.jsonl              # recorded evio file
//	adaptstream -replay ./fl -alerts replayed.jsonl                  # journal replay
//
// Replaying a journal reproduces the recording session's alert sequence
// bitwise: all trigger state advances on event time, never wall clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/adapt"
	"repro/internal/background"
	"repro/internal/buildinfo"
	"repro/internal/detector"
	"repro/internal/downlink"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptstream: ")

	// Input selection (exactly one source).
	replayDir := flag.String("replay", "", "replay a flight journal from this directory instead of live input")
	input := flag.String("input", "", "read events from this evio file instead of simulating")

	// Live-simulation parameters.
	exposure := flag.Float64("exposure", 3.0, "simulated exposure length in seconds")
	burstAt := flag.String("burst-at", "1.2", "comma-separated burst start times in seconds (empty = background only)")
	fluence := flag.Float64("fluence", 2.0, "fluence of each injected burst in MeV/cm²")
	polar := flag.Float64("polar", 20, "burst polar angle in degrees")
	azimuth := flag.Float64("azimuth", 130, "burst azimuth in degrees")
	seed := flag.Uint64("seed", 1, "simulation and localization seed")

	// Trigger configuration.
	bkgRate := flag.Float64("bkg-rate", 0, "calibrated background rate in events/s (0 = calibrate from a seeded 1 s background simulation)")
	sigma := flag.Float64("sigma", 8, "trigger significance threshold in Poisson sigma")
	window := flag.Float64("window", 0.1, "trigger sliding-window width in seconds")
	modelPath := flag.String("model", "", "model bundle for the ML pipeline (empty = analytic pipeline)")
	backendName := flag.String("backend", "float32", "inference backend: float32, int8, or fpga-sim (int8/fpga-sim need a bundle from adapttrain -quantize)")
	lossy := flag.Bool("lossy", false, "use the non-blocking detector-feed path (drops events under overload) instead of lossless ingestion")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for localization (0 = GOMAXPROCS)")
	skymap := flag.Bool("skymap", false, "attach a quantized downlink sky-map payload (skymap_b64) plus calibrated credible areas to every alert record")
	skymapTemp := flag.Float64("skymap-temp", 0, "sky-map tempering temperature (0 = the calibrated default, 1 = statistical-only)")

	// Emulated downlink egress.
	downlinkDir := flag.String("downlink", "", "push alerts and the recorded journal through an emulated lossy downlink, reassembling into this ground directory")
	downlinkBudget := flag.Float64("downlink-budget", 4096, "downlink bandwidth budget in bytes/s")
	downlinkLoss := flag.Float64("downlink-loss", 0, "per-frame drop probability on the emulated downlink")
	downlinkSeed := flag.Uint64("downlink-seed", 1, "downlink fault seed")

	// Recording and output.
	journalDir := flag.String("journal", "", "record admitted events to a flight journal in this directory")
	fsync := flag.String("fsync", "interval", "journal durability: always, interval, or none")
	alertsPath := flag.String("alerts", "", "write alert records as JSON lines to this file (default stdout)")
	report := flag.Bool("report", false, "print the metrics report to stderr when done")
	metricsJSON := flag.String("metrics-json", "", "write the metrics registry as JSON to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("adaptstream"))
		return
	}
	if *replayDir != "" && *input != "" {
		log.Fatal("-replay and -input are mutually exclusive")
	}
	if *replayDir != "" && *journalDir != "" {
		log.Fatal("-journal cannot be combined with -replay (the journal is the input)")
	}
	if *parallelism > 0 {
		adapt.SetDefaultParallelism(*parallelism)
	}

	backend, err := adapt.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("%v", err)
	}

	var bundle *adapt.Models
	if *modelPath != "" {
		m, err := adapt.LoadModels(*modelPath)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		bundle = m
	}
	if _, err := adapt.NewClassifier(backend, bundle); err != nil {
		log.Fatalf("%v", err)
	}

	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rate := *bkgRate
	if rate <= 0 {
		// Same calibration convention as the campaign runner: count one
		// seeded second of quiet sky.
		rate = float64(len(bg.Simulate(&det, 1.0, xrand.New(*seed).Split(0xCA1))))
		fmt.Fprintf(os.Stderr, "adaptstream: calibrated background rate %.0f events/s\n", rate)
	}

	reg := obs.NewRegistry()
	cfg := stream.DefaultConfig(rate)
	cfg.Bundle = bundle
	cfg.Backend = backend
	cfg.Seed = *seed
	cfg.Metrics = reg
	cfg.SigmaThreshold = *sigma
	cfg.WindowSec = *window
	cfg.Workers = *parallelism
	cfg.AlertBuffer = 1024
	if *skymapTemp < 0 {
		log.Fatal("-skymap-temp must be >= 0 (0 = calibrated default)")
	}
	cfg.SkyMap = *skymap
	cfg.SkyMapOpts.Temperature = *skymapTemp

	var journal *flightlog.Journal
	if *journalDir != "" {
		pol, err := syncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		journal, err = flightlog.Open(flightlog.Options{Dir: *journalDir, Sync: pol})
		if err != nil {
			log.Fatalf("open journal: %v", err)
		}
		cfg.Journal = journal
	}

	out := os.Stdout
	if *alertsPath != "" {
		f, err := os.Create(*alertsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}

	p := stream.New(cfg)
	enc := json.NewEncoder(out)
	var downRecs []stream.Record
	drained := make(chan int)
	go func() {
		n := 0
		for a := range p.Alerts() {
			rec := a.Record()
			if err := enc.Encode(rec); err != nil {
				log.Fatal(err)
			}
			if *downlinkDir != "" {
				downRecs = append(downRecs, rec)
			}
			n++
		}
		drained <- n
	}()

	var fed int
	switch {
	case *replayDir != "":
		n, err := stream.ReplayJournal(*replayDir, p) // closes p
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		fed = n
	case *input != "":
		events, err := readEvio(*input)
		if err != nil {
			log.Fatal(err)
		}
		fed = feed(p, events, *lossy)
	default:
		events := simulate(&det, bg, *exposure, *burstAt, *fluence, *polar, *azimuth, *seed)
		fed = feed(p, events, *lossy)
	}
	nAlerts := <-drained

	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Fatalf("close journal: %v", err)
		}
		st := journal.Stats()
		fmt.Fprintf(os.Stderr, "adaptstream: journal: %d records in %d segment(s), %d bytes\n",
			st.Appended, st.Segments, st.TotalBytes)
	}
	fmt.Fprintf(os.Stderr, "adaptstream: %d events in, %d alert(s) out\n", fed, nAlerts)

	if *downlinkDir != "" {
		journalSource := *journalDir
		if *replayDir != "" {
			journalSource = *replayDir
		}
		runDownlink(*downlinkDir, *downlinkBudget, *downlinkLoss, *downlinkSeed,
			cfg.BurstWindowSec, downRecs, journalSource)
	}

	if *report {
		reg.WriteText(os.Stderr)
	}
	if *metricsJSON != "" {
		blob, err := json.MarshalIndent(reg, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*metricsJSON, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// runDownlink replays the session's products — every alert record, plus
// the recorded journal as delta-compressed backfill — through the emulated
// lossy downlink and reassembles them into groundDir. The reassembled
// journal is byte-identical to the onboard one (the ARQ layer recovers
// every loss), and the session stats land in downlink_stats.json.
func runDownlink(groundDir string, budget, loss float64, seed uint64, burstWindowSec float64, alerts []stream.Record, journalSource string) {
	sink, err := downlink.NewDirSink(groundDir, 0)
	if err != nil {
		log.Fatalf("downlink ground: %v", err)
	}
	sess, err := downlink.NewSession(downlink.Config{
		BudgetBytesPerSec: budget,
		Seed:              seed,
		Loss:              downlink.LossProfile{DropProb: loss},
		OnMessage:         sink.OnMessage,
	})
	if err != nil {
		log.Fatalf("downlink: %v", err)
	}

	// Alerts go up as they become available: when the localization window
	// closes. The clamp keeps enqueue times monotone for back-to-back
	// triggers.
	lastT := 0.0
	for _, rec := range alerts {
		t := rec.TriggerS + burstWindowSec
		if t < lastT {
			t = lastT
		}
		blob, err := json.Marshal(rec)
		if err != nil {
			log.Fatalf("downlink alert: %v", err)
		}
		if err := sess.EnqueueAt(t, downlink.ClassAlert, blob); err != nil {
			log.Fatalf("downlink alert: %v", err)
		}
		lastT = t
	}

	var rawBytes, codecBytes int64
	nRecords := 0
	if journalSource != "" {
		var records [][]byte
		if err := flightlog.Replay(journalSource, func(p []byte) error {
			records = append(records, append([]byte(nil), p...))
			rawBytes += int64(len(p))
			return nil
		}); err != nil {
			log.Fatalf("downlink journal replay: %v", err)
		}
		nRecords = len(records)
		// 4096-record batches amortize the per-batch deflate reset
		// (2.12x quiet-sky ratio vs 1.98x at 512; see EXPERIMENTS.md).
		const batch = 4096
		for lo := 0; lo < len(records); lo += batch {
			hi := min(lo+batch, len(records))
			enc, err := downlink.EncodeRecords(records[lo:hi], downlink.CodecOptions{})
			if err != nil {
				log.Fatalf("downlink encode: %v", err)
			}
			codecBytes += int64(len(enc))
			if err := sess.EnqueueAt(lastT, downlink.ClassJournal, enc); err != nil {
				log.Fatalf("downlink journal: %v", err)
			}
		}
	}

	drained := sess.Flush(lastT + 86400)
	if err := sink.Close(); err != nil {
		log.Fatalf("downlink ground: %v", err)
	}
	if !drained {
		log.Fatal("downlink did not drain")
	}
	if sink.JournalRecords != nRecords {
		log.Fatalf("downlink ground has %d journal records, onboard %d", sink.JournalRecords, nRecords)
	}

	st := sess.Stats()
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(groundDir, "downlink_stats.json"), append(blob, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	ratio := ""
	if codecBytes > 0 {
		ratio = fmt.Sprintf(", %.2fx codec", float64(rawBytes)/float64(codecBytes))
	}
	fmt.Fprintf(os.Stderr, "adaptstream: downlink: %d alert(s), %d journal record(s)%s, %d chunks, %d retransmits, drained in %.1f s event time\n",
		len(alerts), nRecords, ratio, st.ChunksSent, st.Retransmits, st.ElapsedSec)
}

func syncPolicy(name string) (flightlog.SyncPolicy, error) {
	switch name {
	case "always":
		return flightlog.SyncAlways, nil
	case "interval":
		return flightlog.SyncInterval, nil
	case "none":
		return flightlog.SyncNone, nil
	}
	return 0, fmt.Errorf("unknown -fsync policy %q (want always, interval, or none)", name)
}

// feed pushes events into the processor in arrival order and closes it.
// The lossy path mirrors a saturating detector feed: events that find the
// ingest queue full are shed and counted, never queued unboundedly.
func feed(p *stream.Processor, events []*detector.Event, lossy bool) int {
	n := 0
	for _, ev := range events {
		if lossy {
			if p.Offer(ev) {
				n++
			}
		} else {
			p.Ingest(ev)
			n++
		}
	}
	p.Close()
	return n
}

func readEvio(path string) ([]*detector.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := evio.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	return events, nil
}

// simulate builds a live exposure: background over the full span with one
// simulated burst injected at each requested start time.
func simulate(det *detector.Config, bg background.Model, exposure float64, burstAt string, fluence, polar, azimuth float64, seed uint64) []*detector.Event {
	rng := xrand.New(seed)
	events := bg.Simulate(det, exposure, rng)
	for _, tok := range strings.Split(burstAt, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		t0, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			log.Fatalf("bad -burst-at entry %q: %v", tok, err)
		}
		b := detector.Burst{Fluence: fluence, PolarDeg: polar, AzimuthDeg: azimuth}
		for _, ev := range detector.SimulateBurst(det, b, rng) {
			ev.ArrivalTime += t0
			events = append(events, ev)
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	return events
}
