// Command adapttrain trains the paper's two neural networks from freshly
// simulated data and saves the model bundle. It can also run the §III
// hyperparameter search (the paper used a WandB sweep over batch size,
// learning rate, depth, and widths) before training.
//
// Usage:
//
//	adapttrain -bursts 3 -epochs 30 -o models.gob
//	adapttrain -tune 12             # random search, report the best configs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/datagen"
	"repro/internal/features"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tune"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adapttrain: ")
	bursts := flag.Int("bursts", 3, "training bursts per polar angle (nine angles)")
	epochs := flag.Int("epochs", 30, "maximum training epochs (early stopping applies)")
	seed := flag.Uint64("seed", 7, "dataset and training seed")
	out := flag.String("o", "models.gob", "output model file")
	noPolar := flag.Bool("no-polar", false, "train the Fig. 7 ablation variant without the polar-angle input")
	quantize := flag.Bool("quantize", false, "also quantize the background net to INT8 and store it in the bundle (enables the int8 and fpga-sim backends)")
	quantMode := flag.String("quant-mode", "qat", "quantization strategy when -quantize is set: qat (fine-tuned) or ptq (calibration only)")
	quiet := flag.Bool("q", false, "suppress per-epoch progress")
	tuneN := flag.Int("tune", 0, "run a random hyperparameter search with this many candidates before training (0 = off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("adapttrain"))
		return
	}

	var qmode models.QuantMode
	switch *quantMode {
	case "qat":
		qmode = models.ModeQAT
	case "ptq":
		qmode = models.ModePTQ
	default:
		log.Fatalf("unknown -quant-mode %q (want qat or ptq)", *quantMode)
	}

	if *tuneN > 0 {
		runTuner(*seed, *bursts, *tuneN, !*noPolar)
		return
	}

	cfg := adapt.Training{
		Seed:           *seed,
		BurstsPerAngle: *bursts,
		Epochs:         *epochs,
		WithPolar:      !*noPolar,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	if *quantize {
		// Quantization needs the fusion-friendly (layer-swapped) background
		// architecture.
		cfg = adapt.TrainingQuantizable(cfg)
	}
	m := adapt.TrainModels(cfg)
	log.Printf("background net test accuracy: %.3f", m.BkgTestAcc)
	log.Printf("dEta net test MSE (ln space): %.3f (width calibration %.2f)", m.DEtaTestMSE, m.DEtaScale)
	log.Printf("per-bin thresholds: %v", m.Thr.ByBin)

	if *quantize {
		// Quantize on the same training distribution the float net saw.
		gen := datagen.DefaultConfig(*seed)
		gen.BurstsPerAngle = *bursts
		set := datagen.Generate(gen)
		qopts := models.DefaultQuantizeOptions(*seed + 2)
		qopts.Mode = qmode
		if *epochs > 0 && *epochs < qopts.QATEpochs {
			qopts.QATEpochs = *epochs
		}
		if !*quiet {
			qopts.Logf = log.Printf
		}
		int8net, _, err := models.QuantizeBackground(m, set, qopts)
		if err != nil {
			log.Fatalf("quantize: %v", err)
		}
		m.Int8 = int8net
		log.Printf("quantized background net (%s) attached to bundle", qopts.Mode)
	}

	// Per-bin classifier report on a fresh evaluation set.
	evalGen := datagen.DefaultConfig(*seed + 100)
	evalGen.BurstsPerAngle = 1
	evalSet := datagen.Generate(evalGen)
	ds := datagen.BackgroundDataset(evalSet, m.WithPolar)
	m.BkgNorm.Apply(ds.X)
	probs := m.Bkg.PredictProbs(ds.X)
	log.Printf("held-out AUC: %.3f", models.AUC(probs, ds.Y))
	if m.Int8 != nil {
		log.Printf("held-out AUC (int8): %.3f", models.AUC(m.Int8.Probs(ds.X), ds.Y))
	}
	models.ReportByBin(os.Stderr, probs, ds.Y, datagen.PolarBins(evalSet), m.Thr)

	if err := adapt.SaveModels(m, *out); err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("saved models to %s", *out)
}

// runTuner reproduces the paper's hyperparameter sweep for the background
// network and prints the candidates best-first.
func runTuner(seed uint64, bursts, trials int, withPolar bool) {
	gen := datagen.DefaultConfig(seed)
	gen.BurstsPerAngle = bursts
	set := datagen.Generate(gen)
	ds := datagen.BackgroundDataset(set, withPolar)
	norm := features.FitNormalizer(ds.X)
	norm.Apply(ds.X)
	rng := xrand.New(seed + 1)
	train, val := ds.Split(0.8, rng)

	in := features.NumFeaturesNoPolar
	if withPolar {
		in = features.NumFeatures
	}
	results := tune.Search(tune.DefaultSpace(), tune.Options{
		Seed: seed + 2, Trials: trials, MaxEpochs: 15, Patience: 5,
		InFeatures: in, Loss: nn.BCEWithLogits{}, Build: models.NewMLP,
		Logf: log.Printf,
	}, train, val)

	log.Printf("top candidates (val BCE):")
	for i, r := range results {
		if i == 5 {
			break
		}
		log.Printf("  %d. %s → %.5f", i+1, r.Candidate, r.ValLoss)
	}
}
