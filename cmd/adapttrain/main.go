// Command adapttrain trains the paper's two neural networks from freshly
// simulated data and saves the model bundle. It can also run the §III
// hyperparameter search (the paper used a WandB sweep over batch size,
// learning rate, depth, and widths) before training.
//
// Usage:
//
//	adapttrain -bursts 3 -epochs 30 -o models.gob
//	adapttrain -tune 12             # random search, report the best configs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/datagen"
	"repro/internal/features"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tune"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adapttrain: ")
	bursts := flag.Int("bursts", 3, "training bursts per polar angle (nine angles)")
	epochs := flag.Int("epochs", 30, "maximum training epochs (early stopping applies)")
	seed := flag.Uint64("seed", 7, "dataset and training seed")
	out := flag.String("o", "models.gob", "output model file")
	noPolar := flag.Bool("no-polar", false, "train the Fig. 7 ablation variant without the polar-angle input")
	quiet := flag.Bool("q", false, "suppress per-epoch progress")
	tuneN := flag.Int("tune", 0, "run a random hyperparameter search with this many candidates before training (0 = off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("adapttrain"))
		return
	}

	if *tuneN > 0 {
		runTuner(*seed, *bursts, *tuneN, !*noPolar)
		return
	}

	cfg := adapt.Training{
		Seed:           *seed,
		BurstsPerAngle: *bursts,
		Epochs:         *epochs,
		WithPolar:      !*noPolar,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	m := adapt.TrainModels(cfg)
	log.Printf("background net test accuracy: %.3f", m.BkgTestAcc)
	log.Printf("dEta net test MSE (ln space): %.3f (width calibration %.2f)", m.DEtaTestMSE, m.DEtaScale)
	log.Printf("per-bin thresholds: %v", m.Thr.ByBin)

	// Per-bin classifier report on a fresh evaluation set.
	evalGen := datagen.DefaultConfig(*seed + 100)
	evalGen.BurstsPerAngle = 1
	evalSet := datagen.Generate(evalGen)
	ds := datagen.BackgroundDataset(evalSet, m.WithPolar)
	m.BkgNorm.Apply(ds.X)
	probs := m.Bkg.PredictProbs(ds.X)
	log.Printf("held-out AUC: %.3f", models.AUC(probs, ds.Y))
	models.ReportByBin(os.Stderr, probs, ds.Y, datagen.PolarBins(evalSet), m.Thr)

	if err := adapt.SaveModels(m, *out); err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("saved models to %s", *out)
}

// runTuner reproduces the paper's hyperparameter sweep for the background
// network and prints the candidates best-first.
func runTuner(seed uint64, bursts, trials int, withPolar bool) {
	gen := datagen.DefaultConfig(seed)
	gen.BurstsPerAngle = bursts
	set := datagen.Generate(gen)
	ds := datagen.BackgroundDataset(set, withPolar)
	norm := features.FitNormalizer(ds.X)
	norm.Apply(ds.X)
	rng := xrand.New(seed + 1)
	train, val := ds.Split(0.8, rng)

	in := features.NumFeaturesNoPolar
	if withPolar {
		in = features.NumFeatures
	}
	results := tune.Search(tune.DefaultSpace(), tune.Options{
		Seed: seed + 2, Trials: trials, MaxEpochs: 15, Patience: 5,
		InFeatures: in, Loss: nn.BCEWithLogits{}, Build: models.NewMLP,
		Logf: log.Printf,
	}, train, val)

	log.Printf("top candidates (val BCE):")
	for i, r := range results {
		if i == 5 {
			break
		}
		log.Printf("  %d. %s → %.5f", i+1, r.Candidate, r.ValLoss)
	}
}
