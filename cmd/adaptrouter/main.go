// Command adaptrouter is the fleet front door: one HTTP process fronting
// N shared-nothing adaptserve replicas with health-aware consistent-hash
// routing, budgeted retries, and an exact (bitwise) result cache over the
// replicas' deterministic endpoints.
//
// Usage:
//
//	adaptserve -addr 127.0.0.1:8081 -models models.gob &
//	adaptserve -addr 127.0.0.1:8082 -models models.gob &
//	adaptserve -addr 127.0.0.1:8083 -models models.gob &
//	adaptrouter -addr :8080 \
//	    -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
//	curl -X POST --data-binary @events.evio \
//	     -H 'Content-Type: application/x-adapt-evio' \
//	     http://localhost:8080/v1/localize?canonical=1
//	curl http://localhost:8080/fleet     # per-replica health/load/models
//	curl http://localhost:8080/metrics  # cache hit ratio, retries, ejections
//
// The replica list may come from the ADAPT_REPLICAS environment variable
// instead of -replicas (same comma-separated form), so a fleet can be
// wired by the deployment environment without argument plumbing.
//
// SIGTERM/SIGINT drains gracefully: readiness flips to 503, the health
// prober stops, in-flight proxied requests finish (bounded by
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptrouter: ")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	replicas := flag.String("replicas", "", "comma-separated adaptserve base URLs (empty = $ADAPT_REPLICAS)")
	vnodes := flag.Int("vnodes", 0, "consistent-hash virtual nodes per replica (0 = default 128)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "/readyz health-probe period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "health-probe round timeout")
	failThreshold := flag.Int("fail-threshold", 2, "consecutive failures that eject a replica")
	retryBudget := flag.Int("retry-budget", 2, "max retried attempts per request after the first (-1 = no retries)")
	retryAfterCap := flag.Duration("retry-after-cap", 2*time.Second, "max honored 429 Retry-After wait")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "per-upstream-attempt timeout (0 = request deadline only)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "exact result cache budget in bytes (-1 disables caching)")
	cacheEntries := flag.Int("cache-entries", 4096, "exact result cache entry bound")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max time to drain in-flight requests on SIGTERM")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("adaptrouter"))
		return
	}

	list := *replicas
	if list == "" {
		list = os.Getenv("ADAPT_REPLICAS")
	}
	var urls []string
	for _, r := range strings.Split(list, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, r)
		}
	}
	if len(urls) == 0 {
		log.Fatalf("no replicas: pass -replicas or set ADAPT_REPLICAS")
	}

	rt, err := router.New(router.Config{
		Replicas:        urls,
		Vnodes:          *vnodes,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		FailThreshold:   *failThreshold,
		RetryBudget:     *retryBudget,
		RetryAfterCap:   *retryAfterCap,
		AttemptTimeout:  *attemptTimeout,
		CacheMaxBytes:   *cacheBytes,
		CacheMaxEntries: *cacheEntries,
	})
	if err != nil {
		log.Fatalf("%v", err)
	}
	// Establish fleet health before accepting traffic so the first
	// requests route on real information, not cold-start optimism.
	rt.ProbeNow(context.Background())

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("listening on %s, fronting %d replicas: %s", l.Addr(), len(urls), strings.Join(urls, ", "))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- rt.Serve(l) }()
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	case sig := <-sigc:
		log.Printf("%s: draining (timeout %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := rt.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Fatalf("drain: %v", err)
		}
		<-done
		log.Printf("drained cleanly")
	}
}
