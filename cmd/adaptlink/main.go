// Command adaptlink drives the telemetry downlink (internal/downlink) from
// the shell: it packs a recorded flight journal into delta-compressed,
// CRC-framed chunks and either writes the raw frame stream, reassembles one
// back into ground artifacts, or runs the full closed-loop ARQ session over
// an emulated lossy link.
//
// Three modes:
//
//	adaptlink -mode transmit -journal ./fl -frames pass.bin       # journal → frame stream
//	adaptlink -mode receive -frames pass.bin -ground ./gnd        # frame stream → ground dir
//	adaptlink -mode emulate -journal ./fl -ground ./gnd \
//	    -budget 16384 -drop 0.1 -reorder 0.2 -outage 3-5 -seed 7  # closed loop with ARQ
//
// Emulate is the flight-fidelity path: frames cross a seeded lossy link,
// the ground's ACK/NAK control frames cross it back, and the selective-
// repeat ARQ layer recovers every loss — the reassembled journal under
// -ground is byte-identical to the onboard one, and the session stats land
// in <ground>/downlink_stats.json. Transmit/receive are the open-loop
// halves for inspecting a frame stream on disk; receive tolerates (and
// counts) corrupt spans by resyncing on the frame magic, so a truncated or
// damaged capture yields every intact message it still contains.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/downlink"
	"repro/internal/flightlog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptlink: ")

	mode := flag.String("mode", "emulate", "transmit, receive, or emulate")
	journalDir := flag.String("journal", "", "flight journal directory to downlink (transmit, emulate)")
	framesPath := flag.String("frames", "", "frame stream file (transmit writes, receive reads)")
	groundDir := flag.String("ground", "", "ground output directory (receive, emulate)")
	segBytes := flag.Int("segment-bytes", 0, "reassembled journal segment size; match the onboard journal's for byte-identical segments (0 = flightlog default)")

	budget := flag.Float64("budget", 4096, "downlink budget in bytes/s")
	chunkBytes := flag.Int("chunk", 1024, "chunk payload size in bytes")
	batch := flag.Int("batch", 4096, "journal records per delta-codec batch")
	noflate := flag.Bool("no-flate", false, "disable the codec's deflate stage (preconditioned stream only)")

	drop := flag.Float64("drop", 0, "per-frame drop probability (emulate)")
	corrupt := flag.Float64("corrupt", 0, "per-frame single-byte corruption probability (emulate)")
	reorder := flag.Float64("reorder", 0, "per-frame reorder probability (emulate)")
	outages := flag.String("outage", "", "comma-separated outage windows as start-end seconds, e.g. 3-5,8-9 (emulate)")
	seed := flag.Uint64("seed", 1, "link fault seed (emulate)")
	deadline := flag.Float64("deadline", 3600, "drain deadline in event-time seconds (emulate)")
	statsPath := flag.String("stats", "", "write session stats JSON here (default <ground>/downlink_stats.json)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("adaptlink"))
		return
	}

	switch *mode {
	case "transmit":
		if *journalDir == "" || *framesPath == "" {
			log.Fatal("transmit needs -journal and -frames")
		}
		transmit(*journalDir, *framesPath, *chunkBytes, *batch, *noflate)
	case "receive":
		if *framesPath == "" || *groundDir == "" {
			log.Fatal("receive needs -frames and -ground")
		}
		receive(*framesPath, *groundDir, *segBytes)
	case "emulate":
		if *journalDir == "" || *groundDir == "" {
			log.Fatal("emulate needs -journal and -ground")
		}
		emulate(emulateOpts{
			journalDir: *journalDir,
			groundDir:  *groundDir,
			segBytes:   *segBytes,
			budget:     *budget,
			chunkBytes: *chunkBytes,
			batch:      *batch,
			noflate:    *noflate,
			drop:       *drop,
			corrupt:    *corrupt,
			reorder:    *reorder,
			outages:    *outages,
			seed:       *seed,
			deadline:   *deadline,
			statsPath:  *statsPath,
		})
	default:
		log.Fatalf("unknown -mode %q (want transmit, receive, or emulate)", *mode)
	}
}

// readJournal loads every record from a flight journal directory.
func readJournal(dir string) [][]byte {
	var records [][]byte
	if err := flightlog.Replay(dir, func(p []byte) error {
		records = append(records, append([]byte(nil), p...))
		return nil
	}); err != nil {
		log.Fatalf("replay journal %s: %v", dir, err)
	}
	if len(records) == 0 {
		log.Fatalf("journal %s has no records", dir)
	}
	return records
}

// enqueueJournal packs records into delta-codec batches on the scheduler's
// journal class, returning the raw and encoded byte totals.
func enqueueJournal(enq func(payload []byte) error, records [][]byte, batch int, noflate bool) (raw, coded int64) {
	if batch <= 0 {
		batch = 4096
	}
	for _, r := range records {
		raw += int64(len(r))
	}
	for lo := 0; lo < len(records); lo += batch {
		hi := min(lo+batch, len(records))
		enc, err := downlink.EncodeRecords(records[lo:hi], downlink.CodecOptions{NoFlate: noflate})
		if err != nil {
			log.Fatalf("encode batch: %v", err)
		}
		coded += int64(len(enc))
		if err := enq(enc); err != nil {
			log.Fatalf("enqueue batch: %v", err)
		}
	}
	return raw, coded
}

// transmit writes the journal's chunked frame stream to a file, open loop.
func transmit(journalDir, framesPath string, chunkBytes, batch int, noflate bool) {
	records := readJournal(journalDir)
	sched := downlink.NewScheduler(chunkBytes, nil)
	raw, coded := enqueueJournal(func(p []byte) error {
		_, err := sched.Enqueue(0, downlink.ClassJournal, p)
		return err
	}, records, batch, noflate)

	f, err := os.Create(framesPath)
	if err != nil {
		log.Fatal(err)
	}
	chunks, frameBytes := 0, int64(0)
	for {
		c, _, ok := sched.NextChunk()
		if !ok {
			break
		}
		frame := c.EncodeFrame()
		if _, err := f.Write(frame); err != nil {
			log.Fatal(err)
		}
		chunks++
		frameBytes += int64(len(frame))
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "adaptlink: %d records (%d bytes) -> %d codec bytes (%.2fx) -> %d frames, %d bytes on the wire\n",
		len(records), raw, coded, float64(raw)/float64(coded), chunks, frameBytes)
}

// receive reassembles a frame stream file into ground artifacts.
func receive(framesPath, groundDir string, segBytes int) {
	data, err := os.ReadFile(framesPath)
	if err != nil {
		log.Fatal(err)
	}
	sink, err := downlink.NewDirSink(groundDir, segBytes)
	if err != nil {
		log.Fatal(err)
	}
	r := downlink.NewReassembler()
	r.OnMessage = sink.OnMessage
	frames, skipped := downlink.ScanFrames(data, func(f *downlink.Frame) {
		if f.Chunk != nil {
			r.Offer(f.Chunk, 0)
		}
	})
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	st := r.Stats()
	fmt.Fprintf(os.Stderr, "adaptlink: %d frames (%d bytes skipped), %d messages delivered, %d journal records\n",
		frames, skipped, st.MessagesDelivered, sink.JournalRecords)
}

type emulateOpts struct {
	journalDir, groundDir, outages, statsPath string
	segBytes, chunkBytes, batch               int
	budget, drop, corrupt, reorder, deadline  float64
	seed                                      uint64
	noflate                                   bool
}

// emulate runs the closed-loop ARQ session over the seeded lossy link.
func emulate(o emulateOpts) {
	records := readJournal(o.journalDir)
	sink, err := downlink.NewDirSink(o.groundDir, o.segBytes)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := downlink.NewSession(downlink.Config{
		BudgetBytesPerSec: o.budget,
		ChunkBytes:        o.chunkBytes,
		Seed:              o.seed,
		Loss: downlink.LossProfile{
			DropProb:    o.drop,
			CorruptProb: o.corrupt,
			ReorderProb: o.reorder,
			Outages:     parseOutages(o.outages),
		},
		OnMessage: sink.OnMessage,
	})
	if err != nil {
		log.Fatal(err)
	}
	raw, coded := enqueueJournal(func(p []byte) error {
		return sess.Enqueue(downlink.ClassJournal, p)
	}, records, o.batch, o.noflate)

	drained := sess.Flush(o.deadline)
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	if !drained {
		log.Fatalf("link did not drain by %g s", o.deadline)
	}
	if sink.JournalRecords != len(records) {
		log.Fatalf("ground has %d records, onboard %d", sink.JournalRecords, len(records))
	}

	st := sess.Stats()
	statsPath := o.statsPath
	if statsPath == "" {
		statsPath = filepath.Join(o.groundDir, "downlink_stats.json")
	}
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(statsPath, append(blob, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "adaptlink: %d records (%d bytes, %.2fx codec) drained in %.1f s event time: %d chunks, %d retransmits, %d dropped, %d corrupted, %d outage-lost\n",
		len(records), raw, float64(raw)/float64(coded), st.ElapsedSec,
		st.ChunksSent, st.Retransmits, st.FramesDropped, st.FramesCorrupted, st.OutageLost)
}

// parseOutages parses "start-end,start-end" into outage windows.
func parseOutages(s string) []downlink.Window {
	if s == "" {
		return nil
	}
	var out []downlink.Window
	for _, tok := range strings.Split(s, ",") {
		lohi := strings.SplitN(strings.TrimSpace(tok), "-", 2)
		if len(lohi) != 2 {
			log.Fatalf("bad -outage entry %q (want start-end)", tok)
		}
		lo, err1 := strconv.ParseFloat(lohi[0], 64)
		hi, err2 := strconv.ParseFloat(lohi[1], 64)
		if err1 != nil || err2 != nil || hi <= lo {
			log.Fatalf("bad -outage window %q", tok)
		}
		out = append(out, downlink.Window{StartSec: lo, EndSec: hi})
	}
	return out
}
