// Command adaptbench regenerates the paper's tables and figures as text
// output (see DESIGN.md §4 for the experiment index), optionally also
// writing the raw series data as JSON for downstream plotting.
//
// Usage:
//
//	adaptbench                        # everything, at the ADAPT_SCALE (default) size
//	adaptbench -scale ci              # quick smoke run
//	adaptbench -only fig9             # one experiment
//	adaptbench -only fig8 -json f.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/expt"
	"repro/internal/par"
	"repro/internal/plot"
)

// maybePlot renders an ASCII chart of the series' 68% containment when
// enabled, passing the series through either way.
func maybePlot(w io.Writer, enabled bool, title, xlabel string, series []expt.Series) []expt.Series {
	if !enabled {
		return series
	}
	var curves []plot.Curve
	for _, s := range series {
		c := plot.Curve{Name: s.Name}
		for _, p := range s.Points {
			c.Points = append(c.Points, plot.XY{X: p.X, Y: p.C68.Mean})
		}
		curves = append(curves, c)
	}
	plot.Lines(w, title, xlabel, "deg", curves, 56, 14)
	return series
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptbench: ")
	scaleName := flag.String("scale", "", "workload scale: ci, default, or full (overrides ADAPT_SCALE)")
	only := flag.String("only", "", "run one experiment: fig4, fig7, fig8, fig9, fig10, fig11, table1, table2, table3, ablations, apt, pileup, quant, coverage")
	jsonPath := flag.String("json", "", "also write the experiment data as JSON to this file")
	plots := flag.Bool("plots", false, "render ASCII charts of figure series (with -only fig…)")
	parallelism := flag.Int("parallelism", 0, "default worker count for parallel pipeline stages (0 = GOMAXPROCS, 1 = serial; Tables I/II pin their own)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("adaptbench"))
		return
	}

	par.SetDefaultWorkers(*parallelism)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	sc := expt.CurrentScale()
	if *scaleName != "" {
		var ok bool
		sc, ok = expt.ScaleByName(*scaleName)
		if !ok {
			log.Fatalf("unknown scale %q (want ci, default, or full)", *scaleName)
		}
	}
	w := os.Stdout
	data := map[string]any{"scale": sc.Name}

	switch strings.ToLower(*only) {
	case "":
		expt.RunAll(w, sc)
		data["note"] = "run with -only <experiment> -json to capture series data"
	case "fig4":
		data["fig4"] = expt.Fig4(w, sc)
	case "fig7":
		data["fig7"] = maybePlot(w, *plots, "Fig. 7 (68% containment)", "polar deg", expt.Fig7(w, sc))
	case "fig8":
		data["fig8"] = maybePlot(w, *plots, "Fig. 8 (68% containment)", "polar deg", expt.Fig8(w, sc))
	case "fig9":
		data["fig9"] = maybePlot(w, *plots, "Fig. 9 (68% containment)", "MeV/cm²", expt.Fig9(w, sc))
	case "fig10":
		data["fig10"] = maybePlot(w, *plots, "Fig. 10 (68% containment)", "epsilon %", expt.Fig10(w, sc))
	case "fig11":
		data["fig11"] = maybePlot(w, *plots, "Fig. 11 (68% containment)", "polar deg", expt.Fig11(w, sc))
	case "table1":
		data["table1"] = expt.TableI(w, sc)
	case "table2":
		data["table2"] = expt.TableII(w, sc)
	case "table3":
		i8, f32 := expt.Table3(w)
		data["table3"] = map[string]any{"int8": i8, "fp32": f32}
	case "ablations":
		data["thresholds"] = expt.AblationThresholds(w, sc)
		data["iterations"] = expt.AblationIterations(w, sc)
		data["gating"] = expt.AblationGating(w, sc)
		data["widening"] = expt.AblationWidening(w, sc)
		data["threecompton"] = expt.AblationThreeCompton(w, sc)
		data["detaloss"] = expt.AblationDEtaLoss(w, sc)
	case "apt":
		data["apt"] = expt.APTStudy(w, sc)
	case "pileup":
		data["pileup"] = expt.PileUpStudy(w, sc)
	case "quant":
		data["quant"] = expt.QuantStudy(w, sc)
	case "coverage":
		data["coverage"] = expt.CoverageStudy(w, sc)
	default:
		log.Fatalf("unknown experiment %q", *only)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(data); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote JSON data to %s", *jsonPath)
	}
}
