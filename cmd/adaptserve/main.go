// Command adaptserve runs the localization service: an HTTP server that
// multiplexes concurrent localization/classification requests through the
// parallel pipeline with micro-batched NN inference, bounded admission
// (429 backpressure), hot-reloadable models, and Prometheus metrics.
//
// Usage:
//
//	adaptserve -addr :8080 -models models.gob
//	curl -X POST --data-binary @events.evio \
//	     -H 'Content-Type: application/x-adapt-evio' \
//	     http://localhost:8080/v1/localize
//	curl http://localhost:8080/metrics
//
// SIGTERM/SIGINT drains gracefully: readiness flips to 503, in-flight
// requests finish (bounded by -drain-timeout), then the process exits 0.
//
// The built-in load generator replays a simulated burst at a target rate
// and reports latency percentiles from the same obs histograms:
//
//	adaptserve -loadgen -qps 50 -duration 10s            # self-contained
//	adaptserve -loadgen -target http://host:8080 -qps 50 # against a server
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/evio"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptserve: ")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	modelPath := flag.String("models", "", "trained model bundle to serve (empty = no-ML pipeline; /admin/reload can load later)")
	backendName := flag.String("backend", "float32", "inference backend: float32, int8, or fpga-sim (int8/fpga-sim need a bundle from adapttrain -quantize)")
	parallelism := flag.Int("parallelism", 0, "worker count for each request's pipeline stages (0 = GOMAXPROCS, 1 = serial)")
	concurrency := flag.Int("concurrency", 0, "max simultaneously computing requests (0 = parallelism default)")
	queue := flag.Int("queue", 0, "max requests waiting beyond -concurrency before 429 (0 = 4x concurrency)")
	batchRows := flag.Int("batch-rows", 0, "NN micro-batch size trigger in feature rows (0 = default)")
	batchWindow := flag.Duration("batch-window", 0, "NN micro-batch deadline trigger (0 = default 2ms)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline when ?deadline_ms absent (0 = 30s)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max time to drain in-flight requests on SIGTERM")
	version := flag.Bool("version", false, "print version and exit")

	loadgen := flag.Bool("loadgen", false, "run the load generator instead of (or against) a server")
	target := flag.String("target", "", "loadgen: base URL of a running adaptserve (empty = start one in-process)")
	qps := flag.Float64("qps", 20, "loadgen: target request rate")
	duration := flag.Duration("duration", 5*time.Second, "loadgen: run length")
	lgConcurrency := flag.Int("loadgen-concurrency", 8, "loadgen: request workers")
	fluence := flag.Float64("fluence", 1.0, "loadgen: simulated burst fluence in MeV/cm²")
	polar := flag.Float64("polar", 30, "loadgen: simulated burst polar angle in degrees")
	seed := flag.Uint64("seed", 1, "loadgen: simulation seed")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("adaptserve"))
		return
	}

	backend, err := adapt.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("%v", err)
	}

	adapt.SetDefaultParallelism(*parallelism)
	inst := adapt.DefaultInstrument()
	inst.Workers = *parallelism
	inst.Backend = backend

	cfg := serve.Config{
		Instrument:      &inst,
		ModelPath:       *modelPath,
		Backend:         backend,
		MaxConcurrent:   *concurrency,
		QueueDepth:      *queue,
		BatchRows:       *batchRows,
		BatchWindow:     *batchWindow,
		DefaultDeadline: *deadline,
	}
	if *modelPath != "" {
		m, err := adapt.LoadModels(*modelPath)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		cfg.Bundle = m
		log.Printf("loaded models from %s (backend %s)", *modelPath, backend)
	}
	if _, err := adapt.NewClassifier(backend, cfg.Bundle); err != nil {
		log.Fatalf("%v", err)
	}

	if *loadgen {
		runLoadgen(cfg, &inst, *target, *addr, *qps, *duration, *lgConcurrency, *fluence, *polar, *seed)
		return
	}

	srv := serve.New(cfg)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("listening on %s", l.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	case sig := <-sigc:
		log.Printf("%s: draining (timeout %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Fatalf("drain: %v", err)
		}
		<-done
		log.Printf("drained cleanly")
	}
}

// runLoadgen replays one simulated burst at the target (an in-process
// server when target is empty) and prints the latency report.
func runLoadgen(cfg serve.Config, inst *adapt.Instrument, target, addr string, qps float64, duration time.Duration, workers int, fluence, polar float64, seed uint64) {
	obsv := inst.Observe(adapt.Burst{Fluence: fluence, PolarDeg: polar, AzimuthDeg: 30}, seed)
	var body bytes.Buffer
	if err := evio.WriteAll(&body, obsv.Events); err != nil {
		log.Fatalf("encode events: %v", err)
	}
	log.Printf("payload: %d events, %d bytes (fluence %.2f, polar %.0f°, seed %d)",
		len(obsv.Events), body.Len(), fluence, polar, seed)

	var srv *serve.Server
	if target == "" {
		srv = serve.New(cfg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		go srv.Serve(l)
		target = "http://" + l.Addr().String()
		log.Printf("started in-process server at %s", target)
	}

	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		TargetURL:   target + "/v1/localize",
		Body:        body.Bytes(),
		QPS:         qps,
		Duration:    duration,
		Concurrency: workers,
	})
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	rep.WriteText(os.Stdout)
	if srv != nil {
		fmt.Println("server-side stage report:")
		srv.Metrics().WriteText(os.Stdout)
	}
}
