// Command adaptserve runs the localization service: an HTTP server that
// multiplexes concurrent localization/classification requests through the
// parallel pipeline with micro-batched NN inference, bounded admission
// (429 backpressure), hot-reloadable models, and Prometheus metrics.
//
// Usage:
//
//	adaptserve -addr :8080 -models models.gob
//	curl -X POST --data-binary @events.evio \
//	     -H 'Content-Type: application/x-adapt-evio' \
//	     http://localhost:8080/v1/localize
//	curl http://localhost:8080/metrics
//
// SIGTERM/SIGINT drains gracefully: readiness flips to 503, in-flight
// requests finish (bounded by -drain-timeout), then the process exits 0.
//
// The built-in load generator replays a simulated burst at a target rate
// and reports latency percentiles from the same obs histograms:
//
//	adaptserve -loadgen -qps 50 -duration 10s            # self-contained
//	adaptserve -loadgen -target http://host:8080 -qps 50 # against a server
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/evio"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptserve: ")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	modelPath := flag.String("models", "", "trained model bundle to serve (empty = no-ML pipeline; /admin/reload can load later)")
	backendName := flag.String("backend", "float32", "inference backend: float32, int8, or fpga-sim (int8/fpga-sim need a bundle from adapttrain -quantize)")
	parallelism := flag.Int("parallelism", 0, "worker count for each request's pipeline stages (0 = GOMAXPROCS, 1 = serial)")
	concurrency := flag.Int("concurrency", 0, "max simultaneously computing requests (0 = parallelism default)")
	queue := flag.Int("queue", 0, "max requests waiting beyond -concurrency before 429 (0 = 4x concurrency)")
	batchRows := flag.Int("batch-rows", 0, "NN micro-batch size trigger in feature rows (0 = default)")
	batchWindow := flag.Duration("batch-window", 0, "NN micro-batch deadline trigger (0 = default 2ms)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline when ?deadline_ms absent (0 = 30s)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max time to drain in-flight requests on SIGTERM")
	version := flag.Bool("version", false, "print version and exit")

	loadgen := flag.Bool("loadgen", false, "run the load generator instead of (or against) a server")
	target := flag.String("target", "", "loadgen: base URL of a running adaptserve (empty = start one in-process)")
	targets := flag.String("targets", "", "loadgen: comma-separated base URLs for open-loop multi-target mode (fleet-wide rate and percentiles; overrides -target)")
	sweep := flag.String("sweep", "", "loadgen: comma-separated QPS steps for a saturation sweep (e.g. 25,50,100,200); empty = single run at -qps")
	qps := flag.Float64("qps", 20, "loadgen: target request rate")
	duration := flag.Duration("duration", 5*time.Second, "loadgen: run length")
	lgConcurrency := flag.Int("loadgen-concurrency", 8, "loadgen: request workers")
	fluence := flag.Float64("fluence", 1.0, "loadgen: simulated burst fluence in MeV/cm²")
	polar := flag.Float64("polar", 30, "loadgen: simulated burst polar angle in degrees")
	seed := flag.Uint64("seed", 1, "loadgen: simulation seed")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("adaptserve"))
		return
	}

	backend, err := adapt.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("%v", err)
	}

	adapt.SetDefaultParallelism(*parallelism)
	inst := adapt.DefaultInstrument()
	inst.Workers = *parallelism
	inst.Backend = backend

	cfg := serve.Config{
		Instrument:      &inst,
		ModelPath:       *modelPath,
		Backend:         backend,
		MaxConcurrent:   *concurrency,
		QueueDepth:      *queue,
		BatchRows:       *batchRows,
		BatchWindow:     *batchWindow,
		DefaultDeadline: *deadline,
	}
	if *modelPath != "" {
		m, err := adapt.LoadModels(*modelPath)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		cfg.Bundle = m
		log.Printf("loaded models from %s (backend %s)", *modelPath, backend)
	}
	if _, err := adapt.NewClassifier(backend, cfg.Bundle); err != nil {
		log.Fatalf("%v", err)
	}

	if *loadgen {
		runLoadgen(cfg, &inst, *target, *targets, *sweep, *qps, *duration, *lgConcurrency, *fluence, *polar, *seed)
		return
	}

	srv := serve.New(cfg)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("listening on %s", l.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	case sig := <-sigc:
		log.Printf("%s: draining (timeout %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Fatalf("drain: %v", err)
		}
		<-done
		log.Printf("drained cleanly")
	}
}

// runLoadgen replays one simulated burst at the target(s) — an in-process
// server when no target is given — and prints the latency report. With
// -targets the run is open-loop multi-target: one fleet-wide offered rate
// round-robined across replicas. With -sweep it repeats the run at each
// QPS step and prints the saturation table.
func runLoadgen(cfg serve.Config, inst *adapt.Instrument, target, targets, sweep string, qps float64, duration time.Duration, workers int, fluence, polar float64, seed uint64) {
	obsv := inst.Observe(adapt.Burst{Fluence: fluence, PolarDeg: polar, AzimuthDeg: 30}, seed)
	var body bytes.Buffer
	if err := evio.WriteAll(&body, obsv.Events); err != nil {
		log.Fatalf("encode events: %v", err)
	}
	log.Printf("payload: %d events, %d bytes (fluence %.2f, polar %.0f°, seed %d)",
		len(obsv.Events), body.Len(), fluence, polar, seed)

	var urls []string
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, strings.TrimRight(t, "/")+"/v1/localize")
		}
	}

	var srv *serve.Server
	if len(urls) == 0 && target == "" {
		srv = serve.New(cfg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		go srv.Serve(l)
		target = "http://" + l.Addr().String()
		log.Printf("started in-process server at %s", target)
	}

	lcfg := serve.LoadConfig{
		Body:        body.Bytes(),
		QPS:         qps,
		Duration:    duration,
		Concurrency: workers,
	}
	if len(urls) > 0 {
		lcfg.Targets = urls
	} else {
		lcfg.TargetURL = target + "/v1/localize"
	}

	var steps []float64
	for _, s := range strings.Split(sweep, ",") {
		if s = strings.TrimSpace(s); s != "" {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil || f <= 0 {
				log.Fatalf("bad -sweep step %q", s)
			}
			steps = append(steps, f)
		}
	}

	var err error
	if len(steps) > 0 {
		var reps []*serve.LoadReport
		reps, err = serve.RunSaturation(context.Background(), lcfg, steps)
		serve.WriteSaturationText(os.Stdout, reps)
	} else {
		var rep *serve.LoadReport
		rep, err = serve.RunLoad(context.Background(), lcfg)
		if rep != nil {
			rep.WriteText(os.Stdout)
		}
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if srv != nil {
		fmt.Println("server-side stage report:")
		srv.Metrics().WriteText(os.Stdout)
	}
}
