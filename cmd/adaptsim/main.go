// Command adaptsim simulates GRB exposures on the ADAPT detector. It has
// two modes:
//
// Plain simulation (default): one burst exposure, written as JSON-lines
// events (or reconstructed Compton rings, or the evio binary format):
//
//	adaptsim -fluence 1.0 -polar 20 -seed 7 -rings > events.jsonl
//
// Scenario mode (-scenario): run a chaos campaign scenario — a flight-like
// stress composition of bursts, background modulation, detector faults, and
// overload — through the full merge → stream pipeline and emit the
// machine-readable mission scorecard. The scorecard is a pure function of
// (spec, seed): byte-identical across runs and worker counts.
//
//	adaptsim -scenario flight -seed 11 > scorecard.json
//	adaptsim -scenario my-scenario.json -alerts alerts.jsonl -report
//	adaptsim -scenario-list
//	adaptsim -scenario saa -tune-trigger 16   # trigger-threshold search
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/chaos"
	"repro/internal/evio"
	"repro/internal/obs"
	"repro/internal/recon"
	"repro/internal/tune"
)

type eventRecord struct {
	Source     string  `json:"source"`
	NHits      int     `json:"n_hits"`
	TotalE     float64 `json:"total_e_mev"`
	TrueEnergy float64 `json:"true_energy_mev"`
	Time       float64 `json:"arrival_s"`
}

type ringRecord struct {
	Background bool    `json:"background"`
	Eta        float64 `json:"eta"`
	DEta       float64 `json:"d_eta"`
	TrueEta    float64 `json:"true_eta"`
	AxisX      float64 `json:"axis_x"`
	AxisY      float64 `json:"axis_y"`
	AxisZ      float64 `json:"axis_z"`
	ETotal     float64 `json:"e_total_mev"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptsim: ")

	// Plain-simulation parameters.
	fluence := flag.Float64("fluence", 1.0, "burst fluence in MeV/cm²")
	polar := flag.Float64("polar", 0, "source polar angle in degrees (0 = zenith)")
	azimuth := flag.Float64("azimuth", 0, "source azimuth in degrees")
	seed := flag.Uint64("seed", 1, "simulation seed")
	rings := flag.Bool("rings", false, "emit reconstructed Compton rings instead of raw events")
	binOut := flag.String("binary", "", "write events in the evio binary format to this file instead of JSON to stdout")

	// Scenario mode.
	scenario := flag.String("scenario", "", "run a chaos scenario: a JSON spec file path, or a built-in name (see -scenario-list)")
	scenarioList := flag.Bool("scenario-list", false, "list the built-in chaos scenarios as JSON and exit")
	scorecardPath := flag.String("scorecard", "", "write the scenario scorecard JSON to this file (default stdout)")
	alertsPath := flag.String("alerts", "", "write scenario alert records as JSON lines to this file")
	modelPath := flag.String("model", "", "model bundle for the ML pipeline (empty = analytic pipeline)")
	backendName := flag.String("backend", "float32", "inference backend: float32, int8, or fpga-sim (int8/fpga-sim need a bundle from adapttrain -quantize)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for localization (0 = GOMAXPROCS); scorecards are identical at any setting")
	tuneTrigger := flag.Int("tune-trigger", 0, "random-search this many trigger candidates against the scenario objective and emit the best one's scorecard")
	tuneSeed := flag.Uint64("tune-seed", 1, "trigger-search seed")

	// Observability.
	report := flag.Bool("report", false, "print the metrics report to stderr when done")
	metricsJSON := flag.String("metrics-json", "", "write the metrics registry as JSON to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("adaptsim"))
		return
	}
	if *scenarioList {
		listScenarios()
		return
	}

	reg := obs.NewRegistry()
	if *scenario != "" {
		runScenario(reg, *scenario, *seed, *parallelism, *modelPath, *backendName,
			*scorecardPath, *alertsPath, *tuneTrigger, *tuneSeed)
	} else {
		runPlain(reg, *fluence, *polar, *azimuth, *seed, *rings, *binOut)
	}

	if *report {
		reg.WriteText(os.Stderr)
	}
	if *metricsJSON != "" {
		blob, err := json.MarshalIndent(reg, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*metricsJSON, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// listScenarios emits the built-in library as a JSON array.
func listScenarios() {
	type entry struct {
		Name             string  `json:"name"`
		Description      string  `json:"description"`
		DurationSec      float64 `json:"duration_sec"`
		Lanes            int     `json:"lanes"`
		Bursts           int     `json:"bursts"`
		Dropouts         int     `json:"dropouts"`
		Drifts           int     `json:"drifts"`
		SAAWindows       int     `json:"saa_windows"`
		Overload         bool    `json:"overload"`
		FalseAlertBudget int     `json:"false_alert_budget"`
	}
	var out []entry
	for _, s := range chaos.Library() {
		n := len(s.Bursts)
		if s.RandomBursts != nil {
			n += s.RandomBursts.Count
		}
		lanes := s.Lanes
		if lanes == 0 {
			lanes = 1
		}
		out = append(out, entry{
			Name:             s.Name,
			Description:      s.Description,
			DurationSec:      s.DurationSec,
			Lanes:            lanes,
			Bursts:           n,
			Dropouts:         len(s.Dropouts),
			Drifts:           len(s.Drifts),
			SAAWindows:       len(s.Background.SAA),
			Overload:         s.Overload != nil,
			FalseAlertBudget: s.FalseAlertBudget,
		})
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(blob))
}

// loadScenario resolves -scenario: an existing file path wins, otherwise
// the built-in library.
func loadScenario(arg string) (*chaos.Spec, error) {
	if data, err := os.ReadFile(arg); err == nil {
		return chaos.ParseSpec(data)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("read %s: %w", arg, err)
	}
	return chaos.Builtin(arg)
}

// runScenario prepares and runs one chaos scenario (optionally tuning the
// trigger first) and writes the scorecard and alert records.
func runScenario(reg *obs.Registry, arg string, seed uint64, parallelism int, modelPath, backendName, scorecardPath, alertsPath string, tuneTrials int, tuneSeed uint64) {
	spec, err := loadScenario(arg)
	if err != nil {
		log.Fatal(err)
	}
	backend, err := adapt.ParseBackend(backendName)
	if err != nil {
		log.Fatal(err)
	}
	var bundle *adapt.Models
	if modelPath != "" {
		m, err := adapt.LoadModels(modelPath)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		bundle = m
	}
	if parallelism > 0 {
		adapt.SetDefaultParallelism(parallelism)
	}

	prep, err := chaos.Prepare(spec, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "adaptsim: scenario %q prepared: %d bursts, calibrated quiet rate %.0f events/s\n",
		spec.Name, len(prep.Bursts()), prep.InitialRate())

	opts := chaos.Options{Workers: parallelism, Bundle: bundle, Backend: backend, Metrics: reg}

	trigger := spec.Trigger
	if tuneTrials > 0 {
		// Search without the registry so candidate runs don't pollute the
		// final run's metrics; the winning candidate is re-run with them.
		searchOpts := opts
		searchOpts.Metrics = nil
		results := tune.SearchTrigger(tune.DefaultTriggerSpace(), tune.TriggerOptions{
			Seed:   tuneSeed,
			Trials: tuneTrials,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "adaptsim: "+format+"\n", args...)
			},
		}, prep.Objective(searchOpts))
		best := results[0]
		fmt.Fprintf(os.Stderr, "adaptsim: best trigger: %s (objective %.4f)\n", best.Candidate, best.Score)
		if best.Candidate != (tune.TriggerCandidate{}) {
			trigger = chaos.TriggerSpec{
				WindowSec:      best.Candidate.WindowSec,
				SigmaThreshold: best.Candidate.SigmaThreshold,
				RateAlpha:      best.Candidate.RateAlpha,
			}
		}
	}

	card, recs, err := prep.RunTrigger(trigger, opts)
	if err != nil {
		log.Fatal(err)
	}

	if alertsPath != "" {
		f, err := os.Create(alertsPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		for _, r := range recs {
			if err := enc.Encode(r); err != nil {
				log.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	out := os.Stdout
	if scorecardPath != "" {
		f, err := os.Create(scorecardPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if _, err := out.Write(card.Encode()); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "adaptsim: scenario %q: efficiency %.2f (%d/%d bursts), %d false alert(s) against budget %d, objective %.4f\n",
		card.Scenario, card.DetectionEfficiency, card.BurstsDetected, card.BurstsInjected,
		card.FalseAlerts, card.FalseAlertBudget, card.Objective)
}

// runPlain is the original single-burst simulation mode, now with metrics.
func runPlain(reg *obs.Registry, fluence, polar, azimuth float64, seed uint64, rings bool, binOut string) {
	inst := adapt.DefaultInstrument()
	stop := reg.StartStage("sim_observe")
	obsr := inst.Observe(adapt.Burst{Fluence: fluence, PolarDeg: polar, AzimuthDeg: azimuth}, seed)
	stop()

	if binOut != "" {
		f, err := os.Create(binOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := evio.WriteAll(f, obsr.Events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", len(obsr.Events), binOut)
		return
	}

	enc := json.NewEncoder(os.Stdout)
	nGRB, nBkg := 0, 0
	for _, ev := range obsr.Events {
		if ev.Source.String() == "grb" {
			nGRB++
		} else {
			nBkg++
		}
		if rings {
			r, ok := recon.Reconstruct(&inst.Recon, ev)
			if !ok {
				continue
			}
			reg.Counter("sim_rings_reconstructed").Inc()
			rec := ringRecord{
				Background: r.Background,
				Eta:        r.Eta, DEta: r.DEta, TrueEta: r.TrueEta,
				AxisX: r.Axis.X, AxisY: r.Axis.Y, AxisZ: r.Axis.Z,
				ETotal: r.ETotal,
			}
			if err := enc.Encode(rec); err != nil {
				log.Fatal(err)
			}
			continue
		}
		rec := eventRecord{
			Source: ev.Source.String(), NHits: len(ev.Hits),
			TotalE: ev.TotalE(), TrueEnergy: ev.TrueEnergy, Time: ev.ArrivalTime,
		}
		if err := enc.Encode(rec); err != nil {
			log.Fatal(err)
		}
	}
	reg.Counter("sim_events_grb").Add(int64(nGRB))
	reg.Counter("sim_events_background").Add(int64(nBkg))
	fmt.Fprintf(os.Stderr, "simulated %d GRB + %d background detected events (fluence %.2f MeV/cm², polar %.0f°)\n",
		nGRB, nBkg, fluence, polar)
}
