// Command adaptsim simulates a GRB exposure on the ADAPT detector and
// writes the detected events (and optionally the reconstructed Compton
// rings) as JSON lines, for inspection or downstream tooling.
//
// Usage:
//
//	adaptsim -fluence 1.0 -polar 20 -seed 7 -rings > events.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/adapt"
	"repro/internal/buildinfo"
	"repro/internal/evio"
	"repro/internal/recon"
)

type eventRecord struct {
	Source     string  `json:"source"`
	NHits      int     `json:"n_hits"`
	TotalE     float64 `json:"total_e_mev"`
	TrueEnergy float64 `json:"true_energy_mev"`
	Time       float64 `json:"arrival_s"`
}

type ringRecord struct {
	Background bool    `json:"background"`
	Eta        float64 `json:"eta"`
	DEta       float64 `json:"d_eta"`
	TrueEta    float64 `json:"true_eta"`
	AxisX      float64 `json:"axis_x"`
	AxisY      float64 `json:"axis_y"`
	AxisZ      float64 `json:"axis_z"`
	ETotal     float64 `json:"e_total_mev"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptsim: ")
	fluence := flag.Float64("fluence", 1.0, "burst fluence in MeV/cm²")
	polar := flag.Float64("polar", 0, "source polar angle in degrees (0 = zenith)")
	azimuth := flag.Float64("azimuth", 0, "source azimuth in degrees")
	seed := flag.Uint64("seed", 1, "simulation seed")
	rings := flag.Bool("rings", false, "emit reconstructed Compton rings instead of raw events")
	binOut := flag.String("binary", "", "write events in the evio binary format to this file instead of JSON to stdout")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("adaptsim"))
		return
	}

	inst := adapt.DefaultInstrument()
	obs := inst.Observe(adapt.Burst{Fluence: *fluence, PolarDeg: *polar, AzimuthDeg: *azimuth}, *seed)

	if *binOut != "" {
		f, err := os.Create(*binOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := evio.WriteAll(f, obs.Events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", len(obs.Events), *binOut)
		return
	}

	enc := json.NewEncoder(os.Stdout)
	nGRB, nBkg := 0, 0
	for _, ev := range obs.Events {
		if ev.Source.String() == "grb" {
			nGRB++
		} else {
			nBkg++
		}
		if *rings {
			r, ok := recon.Reconstruct(&inst.Recon, ev)
			if !ok {
				continue
			}
			rec := ringRecord{
				Background: r.Background,
				Eta:        r.Eta, DEta: r.DEta, TrueEta: r.TrueEta,
				AxisX: r.Axis.X, AxisY: r.Axis.Y, AxisZ: r.Axis.Z,
				ETotal: r.ETotal,
			}
			if err := enc.Encode(rec); err != nil {
				log.Fatal(err)
			}
			continue
		}
		rec := eventRecord{
			Source: ev.Source.String(), NHits: len(ev.Hits),
			TotalE: ev.TotalE(), TrueEnergy: ev.TrueEnergy, Time: ev.ArrivalTime,
		}
		if err := enc.Encode(rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "simulated %d GRB + %d background detected events (fluence %.2f MeV/cm², polar %.0f°)\n",
		nGRB, nBkg, *fluence, *polar)
}
