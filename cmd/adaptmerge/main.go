// Command adaptmerge fuses several detector-segment event sources — flight
// journals, recorded evio exposures, or live simulated segment feeds —
// into one globally time-ordered stream (internal/merge) and drives the
// streaming trigger pipeline (internal/stream) over the fused sequence,
// emitting one JSON alert record per detected burst.
//
// Sources are declared with repeated -src flags:
//
//	adaptmerge -src journal:./seg0 -src journal:./seg1@0.002 \
//	           -src evio:panel2.evio@-0.001 -alerts merged.jsonl
//
// where the optional @offset suffix (seconds) declares the source's clock
// offset; the merge subtracts it, so the fused stream carries corrected
// times. The fused sequence can be recorded to a single canonical journal
// (-journal): replaying that journal with `adaptstream -replay` reproduces
// the merged run's alerts bitwise, no matter how the sources interleaved.
//
// A split mode slices one journal k ways with injected clock skew — the
// inverse operation, used by tests and the merge-smoke CI job:
//
//	adaptmerge -split 3 -skew 0.002,0,-0.001 -src journal:./fl -out ./parts
//
// And a live mode simulates k detector segments pushing concurrently:
//
//	adaptmerge -sim 3 -exposure 3 -burst-at 1.2 -alerts live.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/adapt"
	"repro/internal/background"
	"repro/internal/buildinfo"
	"repro/internal/detector"
	"repro/internal/flightlog"
	"repro/internal/merge"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// srcSpec is one parsed -src flag.
type srcSpec struct {
	kind   string // "journal" or "evio"
	path   string
	offset float64
}

// srcFlags accumulates repeated -src flags.
type srcFlags []srcSpec

func (s *srcFlags) String() string { return fmt.Sprintf("%d source(s)", len(*s)) }

func (s *srcFlags) Set(v string) error {
	kind, rest, ok := strings.Cut(v, ":")
	if !ok || (kind != "journal" && kind != "evio") {
		return fmt.Errorf("source %q: want journal:DIR or evio:FILE, optionally @offset", v)
	}
	spec := srcSpec{kind: kind, path: rest}
	if path, off, ok := strings.Cut(rest, "@"); ok {
		o, err := strconv.ParseFloat(off, 64)
		if err != nil {
			return fmt.Errorf("source %q: bad offset %q: %v", v, off, err)
		}
		spec.path, spec.offset = path, o
	}
	if spec.path == "" {
		return fmt.Errorf("source %q: empty path", v)
	}
	*s = append(*s, spec)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptmerge: ")

	var srcs srcFlags
	flag.Var(&srcs, "src", "event source, journal:DIR or evio:FILE with optional @clock-offset-seconds (repeatable)")

	// Split mode.
	split := flag.Int("split", 0, "split mode: slice the single -src journal into this many journals under -out")
	out := flag.String("out", "", "split mode: output directory (slices land in part0..partN-1)")
	skews := flag.String("skew", "", "split mode: comma-separated per-slice clock skews in seconds (empty = none)")
	splitSeed := flag.Uint64("split-seed", 1, "split mode: seed for the random record-to-slice assignment")

	// Live-sim mode.
	sim := flag.Int("sim", 0, "live mode: simulate this many detector segments pushing one exposure concurrently")
	exposure := flag.Float64("exposure", 3.0, "live mode: simulated exposure length in seconds")
	burstAt := flag.String("burst-at", "1.2", "live mode: comma-separated burst start times in seconds")
	fluence := flag.Float64("fluence", 2.0, "live mode: fluence of each injected burst in MeV/cm²")
	polar := flag.Float64("polar", 20, "live mode: burst polar angle in degrees")
	azimuth := flag.Float64("azimuth", 130, "live mode: burst azimuth in degrees")

	// Merge tuning.
	buffer := flag.Int("buffer", 1024, "per-source prefetch buffer in events")
	stall := flag.Duration("stall-timeout", 0, "age a silent source out of the watermark after this long (0 = wait forever)")

	// Trigger configuration (mirrors adaptstream).
	seed := flag.Uint64("seed", 1, "simulation and localization seed")
	bkgRate := flag.Float64("bkg-rate", 0, "calibrated background rate in events/s (0 = calibrate from a seeded 1 s background simulation)")
	sigma := flag.Float64("sigma", 8, "trigger significance threshold in Poisson sigma")
	window := flag.Float64("window", 0.1, "trigger sliding-window width in seconds")
	modelPath := flag.String("model", "", "model bundle for the ML pipeline (empty = analytic pipeline)")
	backendName := flag.String("backend", "float32", "inference backend: float32, int8, or fpga-sim (int8/fpga-sim need a bundle from adapttrain -quantize)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for localization (0 = GOMAXPROCS)")

	// Recording and output.
	journalDir := flag.String("journal", "", "record the fused event sequence to a canonical flight journal in this directory")
	fsync := flag.String("fsync", "interval", "journal durability: always, interval, or none")
	alertsPath := flag.String("alerts", "", "write alert records as JSON lines to this file (default stdout)")
	report := flag.Bool("report", false, "print the metrics report to stderr when done")
	metricsJSON := flag.String("metrics-json", "", "write the metrics registry as JSON to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("adaptmerge"))
		return
	}
	if *split > 0 {
		runSplit(srcs, *split, *out, *skews, *splitSeed)
		return
	}
	if *sim > 0 && len(srcs) > 0 {
		log.Fatal("-sim and -src are mutually exclusive")
	}
	if *sim == 0 && len(srcs) == 0 {
		log.Fatal("no input: pass -src (repeatable) or -sim k")
	}
	if *parallelism > 0 {
		adapt.SetDefaultParallelism(*parallelism)
	}

	backend, err := adapt.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("%v", err)
	}

	var bundle *adapt.Models
	if *modelPath != "" {
		m, err := adapt.LoadModels(*modelPath)
		if err != nil {
			log.Fatalf("load models: %v", err)
		}
		bundle = m
	}
	if _, err := adapt.NewClassifier(backend, bundle); err != nil {
		log.Fatalf("%v", err)
	}

	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rate := *bkgRate
	if rate <= 0 {
		// Same calibration convention as adaptstream, so a merged run and a
		// single-source run of the same exposure share a trigger config.
		rate = float64(len(bg.Simulate(&det, 1.0, xrand.New(*seed).Split(0xCA1))))
		fmt.Fprintf(os.Stderr, "adaptmerge: calibrated background rate %.0f events/s\n", rate)
	}

	reg := obs.NewRegistry()
	cfg := stream.DefaultConfig(rate)
	cfg.Bundle = bundle
	cfg.Backend = backend
	cfg.Seed = *seed
	cfg.Metrics = reg
	cfg.SigmaThreshold = *sigma
	cfg.WindowSec = *window
	cfg.Workers = *parallelism
	cfg.AlertBuffer = 1024

	var journal *flightlog.Journal
	if *journalDir != "" {
		pol, err := syncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		journal, err = flightlog.Open(flightlog.Options{Dir: *journalDir, Sync: pol})
		if err != nil {
			log.Fatalf("open journal: %v", err)
		}
		cfg.Journal = journal
	}

	outW := os.Stdout
	if *alertsPath != "" {
		f, err := os.Create(*alertsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		outW = f
	}

	// Assemble the merge sources.
	mcfg := merge.Config{BufferEvents: *buffer, StallTimeout: *stall, Metrics: reg}
	switch {
	case *sim > 0:
		mcfg.Sources = simSources(&det, bg, *sim, *exposure, *burstAt, *fluence, *polar, *azimuth, *seed, *buffer)
	default:
		for i, spec := range srcs {
			var feed merge.Feed
			var err error
			switch spec.kind {
			case "journal":
				feed, err = merge.OpenJournal(spec.path)
			case "evio":
				feed, err = merge.OpenEvio(spec.path)
			}
			if err != nil {
				log.Fatalf("source %d (%s:%s): %v", i, spec.kind, spec.path, err)
			}
			mcfg.Sources = append(mcfg.Sources, merge.Source{
				Name:      fmt.Sprintf("s%d", i),
				OffsetSec: spec.offset,
				Feed:      feed,
			})
		}
	}
	merger, err := merge.New(mcfg)
	if err != nil {
		log.Fatal(err)
	}

	p := stream.New(cfg)
	enc := json.NewEncoder(outW)
	drained := make(chan int)
	go func() {
		n := 0
		for a := range p.Alerts() {
			if err := enc.Encode(a.Record()); err != nil {
				log.Fatal(err)
			}
			n++
		}
		drained <- n
	}()

	mergeErr := merger.Run(func(ev *detector.Event) { p.Ingest(ev) })
	p.Close()
	nAlerts := <-drained

	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Fatalf("close journal: %v", err)
		}
		st := journal.Stats()
		fmt.Fprintf(os.Stderr, "adaptmerge: canonical journal: %d records in %d segment(s), %d bytes\n",
			st.Appended, st.Segments, st.TotalBytes)
	}
	for _, st := range merger.Stats() {
		fmt.Fprintf(os.Stderr,
			"adaptmerge: source %s: %d event(s), %d late-dropped, %d stall(s), %d truncated byte(s), skew est %+.6fs",
			st.Name, st.Events, st.LateDropped, st.Stalls, st.TruncatedBytes, st.SkewEstSec)
		if st.Err != nil {
			fmt.Fprintf(os.Stderr, ", failed: %v", st.Err)
		}
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "adaptmerge: %d event(s) fused (%d late-dropped), %d alert(s) out\n",
		merger.EventsOut(), merger.LateDropped(), nAlerts)

	if *report {
		reg.WriteText(os.Stderr)
	}
	if *metricsJSON != "" {
		blob, err := json.MarshalIndent(reg, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*metricsJSON, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if mergeErr != nil {
		log.Fatalf("merge finished with source failures: %v", mergeErr)
	}
}

// runSplit implements -split: slice one journal k ways with injected skew.
func runSplit(srcs srcFlags, k int, out, skews string, seed uint64) {
	if len(srcs) != 1 || srcs[0].kind != "journal" {
		log.Fatal("split mode needs exactly one -src journal:DIR input")
	}
	if out == "" {
		log.Fatal("split mode needs -out DIR")
	}
	var skewsSec []float64
	if skews != "" {
		for _, tok := range strings.Split(skews, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				log.Fatalf("bad -skew entry %q: %v", tok, err)
			}
			skewsSec = append(skewsSec, v)
		}
	}
	dirs := make([]string, k)
	for i := range dirs {
		dirs[i] = filepath.Join(out, fmt.Sprintf("part%d", i))
	}
	st, err := merge.SplitJournal(srcs[0].path, dirs, skewsSec, seed)
	if err != nil {
		log.Fatalf("split: %v", err)
	}
	for i, n := range st.Events {
		skew := 0.0
		if len(skewsSec) > 0 {
			skew = skewsSec[i]
		}
		fmt.Fprintf(os.Stderr, "adaptmerge: %s: %d event(s), skew %+gs\n", dirs[i], n, skew)
	}
	fmt.Fprintf(os.Stderr, "adaptmerge: split %d record(s) into %d journal(s)\n", st.Records, k)
}

// simSources simulates one exposure, deals its events round-robin to k
// live push feeds, and starts one pushing goroutine per segment — k
// detector panels streaming concurrently with arbitrary interleaving. The
// fused output is still deterministic: the watermark orders by event time,
// not arrival.
func simSources(det *detector.Config, bg background.Model, k int, exposure float64, burstAt string, fluence, polar, azimuth float64, seed uint64, buffer int) []merge.Source {
	events := simulate(det, bg, exposure, burstAt, fluence, polar, azimuth, seed)
	parts := make([][]*detector.Event, k)
	for i, ev := range events {
		parts[i%k] = append(parts[i%k], ev)
	}
	sources := make([]merge.Source, k)
	for i := range sources {
		feed := merge.NewPushFeed(buffer)
		sources[i] = merge.Source{Name: fmt.Sprintf("s%d", i), Feed: feed}
		go func(part []*detector.Event, feed *merge.PushFeed, lane int) {
			// A tiny stagger exercises genuinely concurrent arrival without
			// slowing the run measurably.
			for n, ev := range part {
				if n%512 == 0 {
					time.Sleep(time.Duration(lane) * time.Millisecond)
				}
				feed.Ingest(ev)
			}
			feed.CloseInput()
		}(parts[i], feed, i)
	}
	return sources
}

func syncPolicy(name string) (flightlog.SyncPolicy, error) {
	switch name {
	case "always":
		return flightlog.SyncAlways, nil
	case "interval":
		return flightlog.SyncInterval, nil
	case "none":
		return flightlog.SyncNone, nil
	}
	return 0, fmt.Errorf("unknown -fsync policy %q (want always, interval, or none)", name)
}

// simulate builds a live exposure exactly as adaptstream does, so the two
// binaries produce comparable runs for the same flags.
func simulate(det *detector.Config, bg background.Model, exposure float64, burstAt string, fluence, polar, azimuth float64, seed uint64) []*detector.Event {
	rng := xrand.New(seed)
	events := bg.Simulate(det, exposure, rng)
	for _, tok := range strings.Split(burstAt, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		t0, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			log.Fatalf("bad -burst-at entry %q: %v", tok, err)
		}
		b := detector.Burst{Fluence: fluence, PolarDeg: polar, AzimuthDeg: azimuth}
		for _, ev := range detector.SimulateBurst(det, b, rng) {
			ev.ArrivalTime += t0
			events = append(events, ev)
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	return events
}
